// Packet-level MAC behaviour: saturation throughput, spatial reuse,
// fairness under mutual carrier sense, collision collapse with CS off,
// hidden terminals and bitrate adaptation, and the §5 pathologies (slot
// collisions, chain collisions, threshold asymmetry).
#include <gtest/gtest.h>

#include <cmath>

#include "src/capacity/rate_table.hpp"
#include "src/mac/network.hpp"

namespace {

using namespace csense::mac;
using csense::capacity::rate_by_mbps;
using csense::capacity::saturated_broadcast_pps;

constexpr int payload = 1400;
constexpr double seconds = 3.0;
constexpr double run_us = seconds * 1e6;

two_pair_gains far_pairs() {
    two_pair_gains g;
    g.s1_r1 = -60.0;
    g.s2_r2 = -60.0;
    g.s1_s2 = g.s1_r2 = g.s2_r1 = g.r1_r2 = -140.0;
    return g;
}

two_pair_gains close_pairs() {
    two_pair_gains g = far_pairs();
    g.s1_s2 = g.s1_r2 = g.s2_r1 = g.r1_r2 = -70.0;
    return g;
}

TEST(Mac, SingleSenderMatchesAnalyticThroughput) {
    radio_config radio;
    for (double mbps : {6.0, 24.0, 54.0}) {
        const auto& rate = rate_by_mbps(mbps);
        const double pps =
            run_single_pair(radio, -60.0, rate, run_us, payload, 1);
        EXPECT_NEAR(pps, saturated_broadcast_pps(rate, payload),
                    0.05 * saturated_broadcast_pps(rate, payload))
            << mbps << " Mb/s";
    }
}

TEST(Mac, WeakLinkDeliversNothing) {
    radio_config radio;
    const double pps = run_single_pair(radio, -130.0, rate_by_mbps(6.0),
                                       run_us, payload, 2);
    EXPECT_DOUBLE_EQ(pps, 0.0);
}

TEST(Mac, MarginalLinkDeliversPartially) {
    radio_config radio;
    // SNR = 15 - 105 + 95 = 5 dB: lossy at 6 Mb/s but not dead.
    const double pps = run_single_pair(radio, -105.0, rate_by_mbps(6.0),
                                       run_us, payload, 3);
    const double max_pps = saturated_broadcast_pps(rate_by_mbps(6.0), payload);
    EXPECT_GT(pps, 0.1 * max_pps);
    EXPECT_LT(pps, 0.98 * max_pps);
}

TEST(Mac, FarPairsReuseSpatially) {
    radio_config radio;
    const auto& rate = rate_by_mbps(24.0);
    const auto result = run_two_pair_competition(
        radio, far_pairs(), rate, rate, cs_mode::energy_and_preamble, run_us,
        payload, 4);
    const double alone = saturated_broadcast_pps(rate, payload);
    EXPECT_NEAR(result.total_pps(), 2.0 * alone, 0.1 * alone);
}

TEST(Mac, ClosePairsShareFairly) {
    radio_config radio;
    const auto& rate = rate_by_mbps(24.0);
    const auto result = run_two_pair_competition(
        radio, close_pairs(), rate, rate, cs_mode::energy_and_preamble,
        run_us, payload, 5);
    const double alone = saturated_broadcast_pps(rate, payload);
    // Total close to a lone sender's throughput...
    EXPECT_NEAR(result.total_pps(), alone, 0.12 * alone);
    // ...split evenly (Jain-fair within 15%).
    EXPECT_NEAR(result.pps_pair1, result.pps_pair2,
                0.15 * std::max(result.pps_pair1, result.pps_pair2));
}

TEST(Mac, DisablingCarrierSenseCollapsesClosePairs) {
    radio_config radio;
    const auto& rate = rate_by_mbps(24.0);
    const auto with_cs = run_two_pair_competition(
        radio, close_pairs(), rate, rate, cs_mode::energy_and_preamble,
        run_us, payload, 6);
    const auto without = run_two_pair_competition(
        radio, close_pairs(), rate, rate, cs_mode::disabled, run_us, payload,
        6);
    EXPECT_LT(without.total_pps(), 0.45 * with_cs.total_pps());
}

TEST(Mac, HiddenTerminalStarvesVictim) {
    radio_config radio;
    two_pair_gains g = far_pairs();
    g.s1_s2 = -120.0;  // senders mutually inaudible
    g.s2_r1 = -75.0;   // but S2 hammers R1
    g.s1_r1 = -70.0;   // SINR at R1 ~ 5 dB under concurrency
    const auto& r24 = rate_by_mbps(24.0);
    const auto hidden = run_two_pair_competition(
        radio, g, r24, r24, cs_mode::energy_and_preamble, run_us, payload, 7);
    const double alone = saturated_broadcast_pps(r24, payload);
    EXPECT_LT(hidden.pps_pair1, 0.05 * alone);   // victim starved at 24M
    EXPECT_GT(hidden.pps_pair2, 0.9 * alone);    // aggressor unaffected
}

TEST(Mac, HiddenTerminalRecoversAtLowerBitrate) {
    // The thesis' core point: with bitrate adaptation the hidden terminal
    // is "a less-than-ideal bitrate is needed to succeed", not a failure.
    radio_config radio;
    two_pair_gains g = far_pairs();
    g.s1_s2 = -120.0;
    g.s2_r1 = -75.0;
    g.s1_r1 = -70.0;
    const auto at24 = run_two_pair_competition(
        radio, g, rate_by_mbps(24.0), rate_by_mbps(24.0),
        cs_mode::energy_and_preamble, run_us, payload, 8);
    const auto at6 = run_two_pair_competition(
        radio, g, rate_by_mbps(6.0), rate_by_mbps(24.0),
        cs_mode::energy_and_preamble, run_us, payload, 8);
    EXPECT_GT(at6.pps_pair1, 10.0 * std::max(at24.pps_pair1, 1.0));
}

TEST(Mac, SlotCollisionsOccurAtExpectedRate) {
    radio_config radio;
    const auto& rate = rate_by_mbps(24.0);
    const auto result = run_two_pair_competition(
        radio, close_pairs(), rate, rate, cs_mode::energy_and_preamble,
        run_us, payload, 9);
    // Two contenders drawing from [0, 15] collide a few percent of the
    // time; over thousands of frames that is hundreds of events.
    EXPECT_GT(result.counters.slot_collisions, 20u);
    EXPECT_LT(result.counters.slot_collisions,
              result.counters.transmissions / 5);
}

TEST(Mac, ChainCollisionsWithPreambleOnlySensing) {
    // Preamble-only carrier sense misses frames whose preamble arrived
    // while the node itself was transmitting - the §5 "chain collision".
    // The pathology needs asymmetric frame lengths: a slot collision
    // seeds an overlap, the short-frame sender finishes mid-way through
    // the long frame, hears silence (it missed the preamble), and keeps
    // transmitting over it. Equal-length frames resynchronize at every
    // boundary and never enter the state.
    radio_config radio;
    const auto& slow = rate_by_mbps(6.0);   // 1892 us frames
    const auto& fast = rate_by_mbps(54.0);  // 232 us frames
    const auto preamble_only = run_two_pair_competition(
        radio, close_pairs(), slow, fast, cs_mode::preamble, run_us, payload,
        10);
    EXPECT_GT(preamble_only.counters.chain_collisions, 20u);
    // Energy sensing eliminates them.
    const auto energy = run_two_pair_competition(
        radio, close_pairs(), slow, fast, cs_mode::energy, run_us, payload,
        10);
    EXPECT_LT(energy.counters.chain_collisions,
              preamble_only.counters.chain_collisions / 5 + 1);
    // Equal rates: the two-sender system cannot sustain the chain.
    const auto symmetric = run_two_pair_competition(
        radio, close_pairs(), slow, slow, cs_mode::preamble, run_us, payload,
        10);
    EXPECT_LT(symmetric.counters.chain_collisions, 5u);
}

TEST(Mac, ThresholdAsymmetryStarvesTheDeferrer) {
    // One node's CS threshold is 25 dB too deaf: it transmits over the
    // other, while the polite node defers - the observed "threshold
    // asymmetry" pathology.
    radio_config radio;
    network net(radio, 21);
    mac_config deaf;
    // The pathology lives in energy CCA: preamble detection has no
    // calibration offset, so both nodes run pure energy sensing. Close
    // pairs arrive at -55 dBm; a +40 dB offset (threshold -42 dBm) makes
    // the miscalibrated node genuinely deaf to them.
    deaf.sense = cs_mode::energy;
    deaf.cs_threshold_offset_db = 40.0;
    mac_config polite;
    polite.sense = cs_mode::energy;
    const auto s1 = net.add_node(deaf);
    const auto r1 = net.add_node(polite);
    const auto s2 = net.add_node(polite);
    const auto r2 = net.add_node(polite);
    const auto g = close_pairs();
    net.set_link_gain_db(s1, r1, g.s1_r1);
    net.set_link_gain_db(s2, r2, g.s2_r2);
    net.set_link_gain_db(s1, s2, g.s1_s2);
    net.set_link_gain_db(s1, r2, g.s1_r2);
    net.set_link_gain_db(s2, r1, g.s2_r1);
    net.set_link_gain_db(r1, r2, g.r1_r2);
    const auto& rate = rate_by_mbps(24.0);
    net.node(s1).set_traffic(traffic_mode::broadcast, broadcast_id,
                             rate, payload);
    net.node(s2).set_traffic(traffic_mode::broadcast, broadcast_id,
                             rate, payload);
    net.run(run_us);
    const double sent_deaf =
        static_cast<double>(net.node(s1).stats().data_sent);
    const double sent_polite =
        static_cast<double>(net.node(s2).stats().data_sent);
    // The thesis' description of the pathology is "a mix of concurrency
    // and unfair multiplexing", not total starvation: the polite node
    // still slips frames into the deaf node's backoff gaps, but gets a
    // clearly unfair share while the deaf node transmits at its solo rate.
    const double solo = seconds * saturated_broadcast_pps(rate, payload);
    EXPECT_GT(sent_deaf, 0.9 * solo);
    EXPECT_GT(sent_deaf, 1.3 * sent_polite);
    EXPECT_LT(sent_polite, 0.8 * solo);
    EXPECT_EQ(net.node(s1).stats().defer_events, 0u);   // truly deaf
    EXPECT_GT(net.node(s2).stats().defer_events, 500u); // constantly deferring
}

TEST(Mac, DeferEventsCountedUnderContention) {
    radio_config radio;
    const auto& rate = rate_by_mbps(24.0);
    network net(radio, 23);
    mac_config cfg;
    const auto s1 = net.add_node(cfg);
    const auto r1 = net.add_node(cfg);
    const auto s2 = net.add_node(cfg);
    const auto r2 = net.add_node(cfg);
    const auto g = close_pairs();
    net.set_link_gain_db(s1, r1, g.s1_r1);
    net.set_link_gain_db(s2, r2, g.s2_r2);
    net.set_link_gain_db(s1, s2, g.s1_s2);
    net.set_link_gain_db(s1, r2, g.s1_r2);
    net.set_link_gain_db(s2, r1, g.s2_r1);
    net.set_link_gain_db(r1, r2, g.r1_r2);
    net.node(s1).set_traffic(traffic_mode::broadcast, broadcast_id,
                             rate, payload);
    net.node(s2).set_traffic(traffic_mode::broadcast, broadcast_id,
                             rate, payload);
    net.run(run_us);
    EXPECT_GT(net.node(s1).stats().defer_events, 0u);
    EXPECT_GT(net.node(s2).stats().defer_events, 0u);
}

TEST(Mac, DeterministicGivenSeed) {
    radio_config radio;
    const auto& rate = rate_by_mbps(12.0);
    const auto a = run_two_pair_competition(radio, close_pairs(), rate, rate,
                                            cs_mode::energy_and_preamble,
                                            1e6, payload, 77);
    const auto b = run_two_pair_competition(radio, close_pairs(), rate, rate,
                                            cs_mode::energy_and_preamble,
                                            1e6, payload, 77);
    EXPECT_DOUBLE_EQ(a.pps_pair1, b.pps_pair1);
    EXPECT_DOUBLE_EQ(a.pps_pair2, b.pps_pair2);
}

TEST(Mac, MediumValidatesTopology) {
    radio_config radio;
    network net(radio, 1);
    const auto a = net.add_node(mac_config{});
    const auto b = net.add_node(mac_config{});
    EXPECT_THROW(net.set_link_gain_db(a, a, -50.0), std::invalid_argument);
    EXPECT_THROW(net.set_link_gain_db(a, 99, -50.0), std::invalid_argument);
    EXPECT_NO_THROW(net.set_link_gain_db(a, b, -50.0));
    EXPECT_DOUBLE_EQ(net.air().link_gain_db(b, a), -50.0);
    EXPECT_DOUBLE_EQ(net.air().rx_power_dbm(a, b),
                     radio.tx_power_dbm - 50.0);
}

TEST(Mac, ExternalPowerSilentAirIsNoiseFloor) {
    radio_config radio;
    network net(radio, 2);
    const auto a = net.add_node(mac_config{});
    net.add_node(mac_config{});
    EXPECT_NEAR(net.air().external_power_dbm(a), radio.noise_floor_dbm, 1e-9);
}

}  // namespace
