// Unicast MAC paths: DATA/ACK exchange, retries, RTS/CTS with NAV, the
// §5 adaptive RTS/CTS heuristic, and rate adaptation over ACK feedback.
#include <gtest/gtest.h>

#include "src/capacity/rate_adaptation.hpp"
#include "src/capacity/rate_table.hpp"
#include "src/mac/network.hpp"

namespace {

using namespace csense::mac;
using csense::capacity::rate_by_mbps;

constexpr int payload = 1400;

struct unicast_net {
    network net;
    node_id s1, r1, s2, r2;

    explicit unicast_net(const mac_config& sender_cfg, std::uint64_t seed,
                         radio_config radio = radio_config{})
        : net(radio, seed) {
        mac_config receiver_cfg;
        s1 = net.add_node(sender_cfg);
        r1 = net.add_node(receiver_cfg);
        s2 = net.add_node(sender_cfg);
        r2 = net.add_node(receiver_cfg);
    }

    void link(node_id a, node_id b, double gain) {
        net.set_link_gain_db(a, b, gain);
    }
};

TEST(Unicast, CleanLinkAcksEverything) {
    mac_config cfg;
    unicast_net u(cfg, 31);
    u.link(u.s1, u.r1, -60.0);
    u.net.node(u.s1).set_traffic(traffic_mode::unicast, u.r1,
                                 rate_by_mbps(24.0), payload);
    u.net.run(2e6);
    const auto& stats = u.net.node(u.s1).stats();
    EXPECT_GT(stats.data_sent, 1000u);
    EXPECT_EQ(stats.data_dropped, 0u);
    // Nearly every data frame is acknowledged on a clean link.
    EXPECT_GT(stats.data_acked, stats.data_sent * 95 / 100);
    EXPECT_GT(u.net.node(u.r1).stats().acks_sent, 0u);
}

TEST(Unicast, UnicastSlowerThanBroadcastDueToAcks) {
    radio_config radio;
    mac_config cfg;
    unicast_net u(cfg, 33);
    u.link(u.s1, u.r1, -60.0);
    u.net.node(u.s1).set_traffic(traffic_mode::unicast, u.r1,
                                 rate_by_mbps(24.0), payload);
    u.net.run(2e6);
    const double unicast_pps = u.net.node(u.s1).stats().data_acked / 2.0;
    const double broadcast_pps = run_single_pair(radio, -60.0,
                                                 rate_by_mbps(24.0), 2e6,
                                                 payload, 33);
    EXPECT_LT(unicast_pps, broadcast_pps);
    EXPECT_GT(unicast_pps, 0.75 * broadcast_pps);
}

TEST(Unicast, LossyLinkRetriesAndDrops) {
    mac_config cfg;
    unicast_net u(cfg, 35);
    u.link(u.s1, u.r1, -104.0);  // SNR 6 dB: lossy at 12 Mb/s
    u.net.node(u.s1).set_traffic(traffic_mode::unicast, u.r1,
                                 rate_by_mbps(12.0), payload);
    u.net.run(3e6);
    const auto& stats = u.net.node(u.s1).stats();
    EXPECT_GT(stats.data_sent, stats.data_acked);  // retries happened
    EXPECT_GT(stats.data_dropped, 0u);             // some gave up entirely
}

TEST(Unicast, StaticRtsCtsExchangesAndDelivers) {
    mac_config cfg;
    cfg.use_rts_cts = true;
    unicast_net u(cfg, 37);
    u.link(u.s1, u.r1, -60.0);
    u.net.node(u.s1).set_traffic(traffic_mode::unicast, u.r1,
                                 rate_by_mbps(24.0), payload);
    u.net.run(2e6);
    const auto& s = u.net.node(u.s1).stats();
    const auto& r = u.net.node(u.r1).stats();
    EXPECT_GT(s.rts_sent, 1000u);
    EXPECT_GT(r.cts_sent, 1000u);
    EXPECT_GT(s.data_acked, s.data_sent * 9 / 10);
    // RTS/CTS costs airtime: fewer frames than the no-RTS case.
    mac_config plain;
    unicast_net v(plain, 37);
    v.link(v.s1, v.r1, -60.0);
    v.net.node(v.s1).set_traffic(traffic_mode::unicast, v.r1,
                                 rate_by_mbps(24.0), payload);
    v.net.run(2e6);
    EXPECT_LT(s.data_acked, v.net.node(v.s1).stats().data_acked);
}

TEST(Unicast, HiddenTerminalUnicastSuffersWithoutRts) {
    // S2 (broadcast, saturated) is hidden from S1 but deafens R1.
    mac_config cfg;
    unicast_net u(cfg, 39);
    u.link(u.s1, u.r1, -70.0);
    u.link(u.s2, u.r1, -75.0);
    u.link(u.s1, u.s2, -120.0);
    u.link(u.s2, u.r2, -60.0);
    u.net.node(u.s1).set_traffic(traffic_mode::unicast, u.r1,
                                 rate_by_mbps(24.0), payload);
    u.net.node(u.s2).set_traffic(traffic_mode::broadcast,
                                 broadcast_id, rate_by_mbps(24.0), payload);
    u.net.run(3e6);
    const auto& stats = u.net.node(u.s1).stats();
    EXPECT_LT(stats.data_acked, stats.data_sent / 4);  // mostly lost
}

TEST(Unicast, AdaptiveRtsHeuristicActivatesOnHiddenTerminal) {
    // §5: enable RTS/CTS "only when ... experiencing an extremely high
    // loss rate to some receiver in spite of a high RSSI".
    mac_config cfg;
    cfg.adaptive_rts_cts = true;
    unicast_net u(cfg, 41);
    u.link(u.s1, u.r1, -70.0);   // SNR 40 dB: high RSSI
    u.link(u.s2, u.r1, -75.0);   // hidden interferer crushes R1
    u.link(u.s1, u.s2, -120.0);
    u.link(u.s2, u.r2, -60.0);
    // R1's CTS is audible at S2, so the NAV can silence the interferer.
    u.link(u.r1, u.s2, -75.0);
    u.net.node(u.s1).set_traffic(traffic_mode::unicast, u.r1,
                                 rate_by_mbps(24.0), payload);
    u.net.node(u.s2).set_traffic(traffic_mode::broadcast,
                                 broadcast_id, rate_by_mbps(24.0), payload);
    EXPECT_FALSE(u.net.node(u.s1).rts_active());
    u.net.run(3e6);
    EXPECT_TRUE(u.net.node(u.s1).rts_active());
    EXPECT_GT(u.net.node(u.s1).stats().rts_sent, 0u);
}

TEST(Unicast, AdaptiveRtsStaysOffOnCleanLink) {
    mac_config cfg;
    cfg.adaptive_rts_cts = true;
    unicast_net u(cfg, 43);
    u.link(u.s1, u.r1, -60.0);
    u.net.node(u.s1).set_traffic(traffic_mode::unicast, u.r1,
                                 rate_by_mbps(24.0), payload);
    u.net.run(2e6);
    EXPECT_FALSE(u.net.node(u.s1).rts_active());
    EXPECT_EQ(u.net.node(u.s1).stats().rts_sent, 0u);
}

TEST(Unicast, AdaptiveRtsImprovesHiddenTerminalGoodput) {
    auto run_with = [](bool adaptive) {
        mac_config cfg;
        cfg.adaptive_rts_cts = adaptive;
        unicast_net u(cfg, 45);
        u.link(u.s1, u.r1, -70.0);
        u.link(u.s2, u.r1, -75.0);
        u.link(u.s1, u.s2, -120.0);
        u.link(u.s2, u.r2, -60.0);
        u.link(u.r1, u.s2, -75.0);
        u.net.node(u.s1).set_traffic(traffic_mode::unicast, u.r1,
                                     rate_by_mbps(24.0), payload);
        u.net.node(u.s2).set_traffic(traffic_mode::broadcast,
                                     broadcast_id, rate_by_mbps(24.0),
                                     payload);
        u.net.run(4e6);
        return u.net.node(u.s1).stats().data_acked;
    };
    const auto without = run_with(false);
    const auto with = run_with(true);
    EXPECT_GT(with, 2 * without + 10);
}

TEST(Unicast, SampleRateAdaptsOverAckFeedback) {
    mac_config cfg;
    unicast_net u(cfg, 47);
    u.link(u.s1, u.r1, -90.0);  // SNR 20 dB: 24/36 Mb/s territory
    csense::capacity::sample_rate adapter(csense::capacity::ofdm_rates(),
                                          payload, 3);
    u.net.node(u.s1).set_traffic(traffic_mode::unicast, u.r1,
                                 rate_by_mbps(6.0), payload);
    u.net.node(u.s1).set_rate_adaptation(&adapter);
    u.net.run(4e6);
    const auto& stats = u.net.node(u.s1).stats();
    // Adaptation should land well above the 6 Mb/s floor (~ 460 pps):
    // 24+ Mb/s delivers > 1100 pps even with ACK overhead.
    EXPECT_GT(stats.data_acked / 4.0, 800.0);
}

}  // namespace
