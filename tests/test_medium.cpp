// Medium edge cases (§4/§5 implementation corner cases):
//  - the transmission-log compaction actually fires on long quiet-gapped
//    runs, and frames keep delivering afterwards (the log indices a
//    reception holds must never dangle across a compaction);
//  - a transmitter abandons any reception in progress, the abandoned
//    frame is not delivered, and the receiver's lock state resets so it
//    can lock onto later frames.
#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "src/capacity/error_models.hpp"
#include "src/capacity/rate_table.hpp"
#include "src/mac/medium.hpp"
#include "src/mac/network.hpp"
#include "src/sim/simulator.hpp"

namespace {

using namespace csense;
using namespace csense::mac;
using csense::capacity::rate_by_mbps;

/// Listener that records deliveries and stays silent otherwise.
struct recorder final : medium_listener {
    std::vector<std::pair<node_id, bool>> received;  ///< (src, decoded)

    void on_channel_update(double) override {}
    void on_preamble(const frame&, double, sim::time_us) override {}
    void on_frame_received(const frame& f, double, double,
                           bool decoded) override {
        received.emplace_back(f.src, decoded);
    }
    void on_tx_complete(const frame&) override {}
};

frame data_frame(node_id src, double mbps, int bytes = 1400) {
    frame f;
    f.kind = frame_kind::data;
    f.src = src;
    f.dst = broadcast_id;
    f.bytes = bytes;
    f.rate = &rate_by_mbps(mbps);
    return f;
}

TEST(Medium, LogCompactionFiresAndLaterFramesStillDeliver) {
    // A single 54 Mb/s broadcast pair pushes well past 4096 frames in a
    // few simulated seconds, with idle gaps (backoff) where compaction
    // can fire. The log must stay O(active) and delivery must keep
    // working across the compaction boundary.
    radio_config radio;
    network net(radio, 123);
    const auto s = net.add_node(mac_config{});
    const auto r = net.add_node(mac_config{});
    net.set_link_gain_db(s, r, -60.0);
    net.node(s).set_traffic(traffic_mode::broadcast, broadcast_id,
                            rate_by_mbps(54.0), 1400);

    net.run(2e6);
    const auto mid = net.node(r).stats().rx_data_decoded;
    ASSERT_GT(mid, 4096u) << "needs enough frames to cross the threshold";
    EXPECT_LT(net.air().transmission_log_size(), 4200u)
        << "compaction never fired";

    net.run(2e6);  // continue the same simulation past the compaction
    const auto late = net.node(r).stats().rx_data_decoded;
    EXPECT_GT(late, mid + 1000u)
        << "frames must keep delivering after the log was compacted";
    EXPECT_LT(net.air().transmission_log_size(), 4200u);
}

TEST(Medium, TransmitterAbandonsReceptionAndLockResets) {
    sim::simulator sim;
    radio_config radio;
    const capacity::logistic_per_model errors;
    medium air(sim, radio, errors, 7);
    recorder a, b;
    const auto na = air.add_node(a);
    const auto nb = air.add_node(b);
    air.set_link_gain_db(na, nb, -60.0);

    // A starts a long frame; B locks onto it.
    const frame long_frame = data_frame(na, 6.0);     // ~1900 us airtime
    const frame short_frame = data_frame(nb, 54.0);   // ~230 us airtime
    sim.schedule_in(0.0, [&] {
        air.start_transmission(na, long_frame, true);
    });
    // Mid-frame, B transmits: it must abandon the reception in progress.
    sim.schedule_in(400.0, [&] {
        ASSERT_FALSE(air.transmitting(nb));
        air.start_transmission(nb, short_frame, true);
    });
    sim.run_until(3000.0);  // both frames have left the air
    EXPECT_TRUE(b.received.empty())
        << "the abandoned frame must not be delivered";

    // The lock state reset: B (idle again) locks onto A's next frame and
    // decodes it at clean-channel SINR.
    sim.schedule_in(100.0, [&] {
        air.start_transmission(na, data_frame(na, 6.0), true);
    });
    sim.run_until(6000.0);
    ASSERT_EQ(b.received.size(), 1u);
    EXPECT_EQ(b.received[0].first, na);
    EXPECT_TRUE(b.received[0].second) << "clean 55 dB SNR frame must decode";
}

TEST(Medium, AbandonedFrameStillCountsAsInterferenceElsewhere) {
    // B abandoning its reception does not take A's frame off the air: a
    // third node C locked onto a weak frame from D must still see A's
    // transmission as interference. Regression for lock bookkeeping
    // (abandon resets B's lock only, not the transmission).
    sim::simulator sim;
    radio_config radio;
    const capacity::logistic_per_model errors;
    medium air(sim, radio, errors, 9);
    recorder a, b, c, d;
    const auto na = air.add_node(a);
    const auto nb = air.add_node(b);
    const auto nc = air.add_node(c);
    const auto nd = air.add_node(d);
    air.set_link_gain_db(na, nb, -60.0);
    air.set_link_gain_db(nd, nc, -88.0);  // marginal link: 27 dB SNR...
    air.set_link_gain_db(na, nc, -90.0);  // ...A degrades it to ~2 dB SINR
    air.set_link_gain_db(na, nd, -140.0);
    air.set_link_gain_db(nb, nc, -140.0);
    air.set_link_gain_db(nb, nd, -140.0);
    air.set_link_gain_db(nc, nd, -88.0);

    // D's long frame starts first and C locks on cleanly.
    sim.schedule_in(0.0, [&] {
        air.start_transmission(nd, data_frame(nd, 24.0), true);
    });
    // A's long frame overlaps it; B abandons nothing here - it just
    // transmits to force the abandon path while C's reception runs.
    sim.schedule_in(50.0, [&] {
        air.start_transmission(na, data_frame(na, 6.0), true);
    });
    sim.schedule_in(100.0, [&] {
        air.start_transmission(nb, data_frame(nb, 54.0), true);
    });
    sim.run_until(10000.0);
    ASSERT_EQ(c.received.size(), 1u);
    EXPECT_FALSE(c.received[0].second)
        << "A's frame must stay on the air as interference at C even "
           "after B abandoned its own reception of it";
}

}  // namespace
