// The neighbor-culled medium (PR 5): audibility neighbor lists, the
// incremental Kahan power accounting, and the spatial-grid topology
// setup must reproduce the dense medium - exactly where the model says
// they are exact (sub-floor power treated as zero), and within a tight
// tolerance on end-to-end metrics over random topologies. Also the
// unified bounds checking across the medium's public surface.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <utility>
#include <vector>

#include "src/capacity/error_models.hpp"
#include "src/capacity/rate_table.hpp"
#include "src/mac/medium.hpp"
#include "src/mac/multi_pair.hpp"
#include "src/sim/simulator.hpp"
#include "src/stats/rng.hpp"

namespace {

using namespace csense;
using namespace csense::mac;
using csense::capacity::rate_by_mbps;

struct recorder final : medium_listener {
    int channel_updates = 0;
    int preambles = 0;
    std::vector<std::pair<node_id, bool>> received;  ///< (src, decoded)

    void on_channel_update(double) override { ++channel_updates; }
    void on_preamble(const frame&, double, sim::time_us) override {
        ++preambles;
    }
    void on_frame_received(const frame& f, double, double,
                           bool decoded) override {
        received.emplace_back(f.src, decoded);
    }
    void on_tx_complete(const frame&) override {}
};

frame data_frame(node_id src, double mbps, int bytes = 1400) {
    frame f;
    f.kind = frame_kind::data;
    f.src = src;
    f.dst = broadcast_id;
    f.bytes = bytes;
    f.rate = &rate_by_mbps(mbps);
    return f;
}

TEST(MediumValidation, PublicSurfaceChecksNodeIdsUniformly) {
    sim::simulator sim;
    const capacity::logistic_per_model errors;
    medium air(sim, radio_config{}, errors, 1);
    recorder a, b;
    const auto na = air.add_node(a);
    const auto nb = air.add_node(b);
    air.set_link_gain_db(na, nb, -60.0);

    EXPECT_THROW(air.external_power_dbm(2), std::invalid_argument);
    EXPECT_THROW(air.transmitting(2), std::invalid_argument);
    EXPECT_THROW(air.link_gain_db(na, 2), std::invalid_argument);
    EXPECT_THROW(air.link_gain_db(2, nb), std::invalid_argument);
    EXPECT_THROW(air.link_gain_db(na, na), std::invalid_argument);
    EXPECT_THROW(air.rx_power_dbm(na, 2), std::invalid_argument);
    EXPECT_THROW(air.set_link_gain_db(na, 2, -60.0), std::invalid_argument);
    EXPECT_THROW(air.neighbor_count(2), std::invalid_argument);
    EXPECT_THROW(air.start_transmission(2, data_frame(2, 6.0), true),
                 std::invalid_argument);
    // Valid ids keep working.
    EXPECT_FALSE(air.transmitting(na));
    EXPECT_DOUBLE_EQ(air.link_gain_db(na, nb), -60.0);
}

TEST(MediumValidation, AudibilityFloorMustSitBelowCcaThresholds) {
    sim::simulator sim;
    const capacity::logistic_per_model errors;
    radio_config radio;
    radio.audibility_floor_dbm = radio.preamble_threshold_dbm + 1.0;
    EXPECT_THROW(medium(sim, radio, errors, 1), std::invalid_argument);
    // A floor below the preamble sensitivity but above a lowered energy
    // threshold would silently deafen energy CCA to real carriers.
    radio.cs_threshold_dbm = -105.0;
    radio.audibility_floor_dbm = -100.0;
    EXPECT_THROW(medium(sim, radio, errors, 1), std::invalid_argument);
    radio.cs_threshold_dbm = -82.0;
    radio.audibility_floor_dbm = radio.noise_floor_dbm - 20.0;
    EXPECT_NO_THROW(medium(sim, radio, errors, 1));
}

TEST(MediumValidation, AdaptiveClampMustStayAboveTheFloor) {
    // The medium cannot see per-node override ranges, so run_multi_pair
    // enforces the floor invariant for the adaptive clamp itself.
    stats::rng gen(4);
    const auto topology = mac::sample_multi_pair_topology(2, 100.0, 10.0, gen);
    multi_pair_config config;
    config.rate = &rate_by_mbps(6.0);
    config.radio.audibility_floor_dbm = config.radio.noise_floor_dbm - 20.0;
    config.adapt.policy = cs_adapt_policy::target_busy;
    config.adapt.min_threshold_dbm = config.radio.audibility_floor_dbm - 5.0;
    EXPECT_THROW(mac::run_multi_pair(topology, config), std::invalid_argument);
    config.adapt.min_threshold_dbm = -95.0;  // back above the floor
    EXPECT_NO_THROW(mac::run_multi_pair(topology, config));
}

TEST(MediumCulling, SubFloorLinksAreCulledAndNeighborsStillServed) {
    sim::simulator sim;
    radio_config radio;
    radio.audibility_floor_dbm = radio.noise_floor_dbm - 20.0;  // -115 dBm
    const capacity::logistic_per_model errors;
    medium air(sim, radio, errors, 7);
    recorder a, b, c;
    const auto na = air.add_node(a);
    const auto nb = air.add_node(b);
    const auto nc = air.add_node(c);
    air.set_link_gain_db(na, nb, -60.0);   // audible, decodable
    air.set_link_gain_db(na, nc, -140.0);  // -125 dBm rx: below the floor
    air.set_link_gain_db(nb, nc, -140.0);

    EXPECT_TRUE(air.neighbor_culling());
    sim.schedule_in(0.0, [&] {
        air.start_transmission(na, data_frame(na, 6.0), true);
    });
    sim.run_until(100.0);

    EXPECT_EQ(air.neighbor_count(na), 1u);
    EXPECT_EQ(air.neighbor_count(nb), 1u);
    EXPECT_EQ(air.neighbor_count(nc), 0u);
    // Mid-frame: the neighbor sees the power, the culled node sees
    // silence (its sub-floor rx power is modeled as exactly zero).
    EXPECT_NEAR(air.external_power_dbm(nb), radio.tx_power_dbm - 60.0, 0.1);
    EXPECT_DOUBLE_EQ(air.external_power_dbm(nc), radio.noise_floor_dbm);

    sim.run_until(5000.0);  // frame ends (~1.9 ms at 6 Mb/s)
    ASSERT_EQ(b.received.size(), 1u);
    EXPECT_EQ(b.received[0].first, na);
    EXPECT_TRUE(b.received[0].second);
    EXPECT_GT(b.channel_updates, 0);
    EXPECT_GT(b.preambles, 0);
    EXPECT_EQ(c.channel_updates, 0);
    EXPECT_EQ(c.preambles, 0);
    EXPECT_TRUE(c.received.empty());
    // When the air went quiet the neighbor's power returned exactly to
    // the noise floor (the incremental sum resets when the audible set
    // empties - no drift).
    EXPECT_DOUBLE_EQ(air.external_power_dbm(nb), radio.noise_floor_dbm);
}

/// Shared setup for the end-to-end equivalence runs: a sparse arena
/// where the audibility floor actually removes most links.
multi_pair_config sparse_arena_config(bool culled) {
    multi_pair_config config;
    config.rate = &rate_by_mbps(6.0);
    config.alpha = 4.0;  // urban-ish falloff so the audible range is finite
    config.duration_us = 3e5;
    if (culled) {
        config.radio.audibility_floor_dbm =
            config.radio.noise_floor_dbm - 20.0;
    }
    return config;
}

TEST(MediumCulling, EndToEndMetricsMatchDenseWithinTolerance) {
    // The satellite gate: on random N=20 topologies, the culled medium's
    // throughput/fairness must agree with the dense medium within a
    // tolerance set by the dropped sub-floor power (< 0.2 dB of
    // aggregate interference in this arena). The runs are stochastic
    // replays of the same seed, so residual divergence comes only from
    // rare PER draws flipped by the tiny SINR shift.
    for (const std::uint64_t seed : {11u, 22u, 33u}) {
        stats::rng gen(seed);
        const auto topology = mac::sample_multi_pair_topology(
            /*pairs=*/20, /*arena_m=*/400.0, /*rmax_m=*/10.0, gen);
        auto dense = sparse_arena_config(false);
        auto culled = sparse_arena_config(true);
        dense.seed = culled.seed = 1000 + seed;
        const auto dense_run = mac::run_multi_pair(topology, dense);
        const auto culled_run = mac::run_multi_pair(topology, culled);
        ASSERT_GT(dense_run.total_pps, 0.0);
        EXPECT_NEAR(culled_run.total_pps / dense_run.total_pps, 1.0, 0.05)
            << "seed " << seed;
        EXPECT_NEAR(culled_run.jain_index(), dense_run.jain_index(), 0.05)
            << "seed " << seed;
        // Same transmission counters: backoff streams are per-node and
        // the culled CCA sees the same super-threshold power.
        EXPECT_NEAR(static_cast<double>(culled_run.counters.transmissions),
                    static_cast<double>(dense_run.counters.transmissions),
                    0.02 * static_cast<double>(dense_run.counters.transmissions))
            << "seed " << seed;
    }
}

TEST(MediumCulling, FadingWidensTheCullCriterionByThreeSigma) {
    // With fading on, a link whose *mean* power sits below the floor can
    // still fade above a CCA threshold on some frames; the freeze must
    // keep any link within the 3-sigma fade allowance of the floor.
    const capacity::logistic_per_model errors;
    radio_config radio;
    radio.audibility_floor_dbm = radio.noise_floor_dbm - 20.0;  // -115 dBm
    // Mean rx power -118 dBm: below the plain floor...
    const double gain_db = -118.0 - radio.tx_power_dbm;

    sim::simulator sim_unfaded;
    medium unfaded(sim_unfaded, radio, errors, 7);
    recorder a1, b1;
    const auto ua = unfaded.add_node(a1);
    const auto ub = unfaded.add_node(b1);
    unfaded.set_link_gain_db(ua, ub, gain_db);
    sim_unfaded.schedule_in(0.0, [&] {
        unfaded.start_transmission(ua, data_frame(ua, 6.0), true);
    });
    sim_unfaded.run_until(10.0);
    EXPECT_EQ(unfaded.neighbor_count(ub), 0u) << "culled without fading";

    sim::simulator sim_faded;
    radio.fading_sigma_db = 2.0;  // effective floor: -121 dBm
    medium faded(sim_faded, radio, errors, 7);
    recorder a2, b2;
    const auto fa = faded.add_node(a2);
    const auto fb = faded.add_node(b2);
    faded.set_link_gain_db(fa, fb, gain_db);
    sim_faded.schedule_in(0.0, [&] {
        faded.start_transmission(fa, data_frame(fa, 6.0), true);
    });
    sim_faded.run_until(10.0);
    EXPECT_EQ(faded.neighbor_count(fb), 1u)
        << "a link within 3 sigma of the floor must stay audible";
}

TEST(MediumCulling, EndToEndMetricsMatchDenseWithFadingEnabled) {
    // With fading the two modes consume RNG differently (dense draws a
    // fade per node, culled per neighbor), so runs diverge stochastically
    // rather than only by the dropped sub-floor power - but thanks to
    // the 3-sigma cull allowance the aggregate metrics must still agree.
    for (const std::uint64_t seed : {11u, 22u, 33u}) {
        stats::rng gen(seed);
        const auto topology = mac::sample_multi_pair_topology(20, 400.0, 10.0, gen);
        auto dense = sparse_arena_config(false);
        auto culled = sparse_arena_config(true);
        dense.radio.fading_sigma_db = culled.radio.fading_sigma_db = 3.0;
        dense.seed = culled.seed = 1000 + seed;
        const auto dense_run = mac::run_multi_pair(topology, dense);
        const auto culled_run = mac::run_multi_pair(topology, culled);
        ASSERT_GT(dense_run.total_pps, 0.0);
        EXPECT_NEAR(culled_run.total_pps / dense_run.total_pps, 1.0, 0.05)
            << "seed " << seed;
        EXPECT_NEAR(culled_run.jain_index(), dense_run.jain_index(), 0.05)
            << "seed " << seed;
    }
}

TEST(MediumCulling, CulledRunsAreDeterministicAcrossRefreshCadences) {
    stats::rng gen(5);
    const auto topology = mac::sample_multi_pair_topology(20, 400.0, 10.0, gen);
    auto config = sparse_arena_config(true);
    config.duration_us = 2e5;

    const auto once = mac::run_multi_pair(topology, config);
    const auto again = mac::run_multi_pair(topology, config);
    EXPECT_EQ(once.per_pair_pps, again.per_pair_pps)
        << "same seed must reproduce the culled run bit-for-bit";
    EXPECT_EQ(once.counters.transmissions, again.counters.transmissions);

    // An aggressive refresh cadence recomputes the sums exactly; with
    // compensated accounting the refresh must be a no-op at metric level
    // (it only exists to bound drift over *much* longer runs).
    auto frequent = config;
    frequent.radio.power_refresh_interval = 16;
    auto never = config;
    never.radio.power_refresh_interval = 0;
    const auto frequent_run = mac::run_multi_pair(topology, frequent);
    const auto never_run = mac::run_multi_pair(topology, never);
    EXPECT_EQ(frequent_run.per_pair_pps, never_run.per_pair_pps)
        << "refresh cadence leaked into short-run results: the "
           "compensated sums must already be exact at this scale";
}

TEST(MediumCulling, GridLinkingMatchesBruteForce) {
    stats::rng gen(9);
    const auto topology = mac::sample_multi_pair_topology(60, 600.0, 15.0, gen);
    const auto config = sparse_arena_config(true);

    const auto grid_pairs = mac::audible_link_pairs(topology, config);
    std::set<std::pair<node_id, node_id>> grid_set(grid_pairs.begin(),
                                                   grid_pairs.end());
    EXPECT_EQ(grid_set.size(), grid_pairs.size()) << "duplicate pairs";

    // Brute-force reference over the flattened node order (sender i is
    // node 2i, receiver i is node 2i + 1).
    std::vector<multi_pair_topology::position> nodes;
    for (std::size_t i = 0; i < topology.pairs(); ++i) {
        nodes.push_back(topology.senders[i]);
        nodes.push_back(topology.receivers[i]);
    }
    std::size_t audible = 0, total = 0;
    for (node_id a = 0; a < nodes.size(); ++a) {
        for (node_id b = a + 1; b < nodes.size(); ++b) {
            ++total;
            const double dist = std::hypot(nodes[a].x - nodes[b].x,
                                           nodes[a].y - nodes[b].y);
            const double rx_dbm =
                config.radio.tx_power_dbm + config.gain_db(dist);
            if (rx_dbm >= config.radio.audibility_floor_dbm) {
                ++audible;
                EXPECT_TRUE(grid_set.count({a, b}))
                    << "grid dropped audible pair " << a << "," << b
                    << " at distance " << dist;
            }
        }
    }
    EXPECT_GT(audible, 0u);
    EXPECT_LT(grid_set.size(), total)
        << "the floor should cull most of this sparse arena";
    // Over-inclusion is allowed only in a hair's width at the range
    // boundary; anything more means the grid is not actually culling.
    EXPECT_LE(grid_set.size(), audible + 2);
}

TEST(MediumCulling, DefaultConfigKeepsTheDensePath) {
    // camp01-camp04 and every historical scenario construct their radios
    // from the defaults: the floor must stay disabled there, so those
    // runs take the dense path and remain byte-identical to pre-culling
    // builds (verified against the PR-4 binary when this landed).
    EXPECT_FALSE(radio_config{}.audibility_enabled());
    EXPECT_FALSE(multi_pair_config{}.radio.audibility_enabled());
    sim::simulator sim;
    const capacity::logistic_per_model errors;
    medium air(sim, radio_config{}, errors, 1);
    EXPECT_FALSE(air.neighbor_culling());
}

TEST(MediumCulling, DisabledFloorReturnsAllPairs) {
    stats::rng gen(3);
    const auto topology = mac::sample_multi_pair_topology(5, 100.0, 10.0, gen);
    const auto config = sparse_arena_config(false);
    const auto pairs = mac::audible_link_pairs(topology, config);
    EXPECT_EQ(pairs.size(), 10u * 9u / 2u);
}

}  // namespace
