// Fault injection for the shard-store merge: every way a shard set can
// be wrong (corrupt record, stale schema, missing shard, duplicate
// ownership claim, coverage gap, env mismatch) must map to its
// documented exit code, report every issue, and never write a merged
// store — a merge can never silently drop cells. Exercises both the
// library (store::merge_shard_stores on synthetic stores) and the
// csense_merge binary's exit codes.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "src/store/result_store.hpp"
#include "src/store/run_keys.hpp"
#include "src/store/shard_merge.hpp"

#if __has_include(<sys/wait.h>)
#include <sys/wait.h>
#endif

#ifdef WEXITSTATUS
#define CSENSE_EXIT(code) (WIFEXITED(code) ? WEXITSTATUS(code) : -1)
#else
#define CSENSE_EXIT(code) (code)
#endif

namespace {

namespace fs = std::filesystem;
using namespace csense::store;

constexpr int kShards = 3;
// The synthetic campaign: one unit, six replications, shard_size 1, so
// shard i owns replications {i, i + 3}.
const char* const kPrefix = "shard/fake?seed=1&env=/n4";
constexpr std::int64_t kReps = 6;

shard_manifest manifest_for(int shard_index) {
    shard_manifest m;
    m.shard_index = shard_index;
    m.shard_count = kShards;
    m.seed = 1;
    m.filter = "fake";
    m.repeat = 1;
    m.timings = false;
    m.env_fp = "";
    m.scenarios = {"fake"};
    m.units = {{kPrefix, kReps, 1}};
    return m;
}

std::string rep_key(std::int64_t j) {
    return std::string(kPrefix) + "/rep" + std::to_string(j);
}

std::string rep_payload(std::int64_t j) {
    return "{\"rep\":" + std::to_string(j) + "}";
}

struct shard_build {
    bool manifest = true;
    std::int64_t skip_rep = -1;     ///< owned rep to leave unwritten
    std::int64_t foreign_rep = -1;  ///< non-owned rep to plant anyway
    std::string schema = std::string(kBenchStoreSchema);
    fs_hooks hooks = {};
};

void build_shard(const fs::path& root, int i, const shard_build& build) {
    result_store store(root, build.schema, build.hooks);
    for (std::int64_t j = 0; j < kReps; ++j) {
        if (j % kShards != i || j == build.skip_rep) continue;
        ASSERT_TRUE(store.put(rep_key(j), rep_payload(j)));
    }
    if (build.foreign_rep >= 0) {
        ASSERT_TRUE(store.put(rep_key(build.foreign_rep),
                              rep_payload(build.foreign_rep)));
    }
    if (build.manifest) {
        ASSERT_TRUE(store.put(kManifestKey,
                              encode_manifest(manifest_for(i))));
    }
}

/// A fresh 3-shard fixture under TempDir; per-shard build overrides via
/// `builds` (indexed by shard).
struct fixture {
    fs::path base;
    std::vector<fs::path> shards;
    fs::path out;

    explicit fixture(const std::string& tag,
                     const std::vector<shard_build>& builds = {}) {
        base = fs::path(::testing::TempDir()) / tag;
        fs::remove_all(base);
        fs::create_directories(base);
        out = base / "merged";
        for (int i = 0; i < kShards; ++i) {
            shards.push_back(base / ("s" + std::to_string(i)));
            const shard_build build = static_cast<std::size_t>(i) <
                                              builds.size()
                                          ? builds[static_cast<std::size_t>(i)]
                                          : shard_build{};
            build_shard(shards.back(), i, build);
        }
    }
};

void expect_refused(const merge_result& result, merge_issue_kind kind,
                    int exit_code, const fs::path& out) {
    ASSERT_FALSE(result.issues.empty());
    bool found = false;
    for (const auto& issue : result.issues) found |= issue.kind == kind;
    EXPECT_TRUE(found) << "expected a " << merge_issue_kind_name(kind)
                       << " issue";
    EXPECT_EQ(merge_exit_code(result.issues), exit_code);
    EXPECT_FALSE(fs::exists(out))
        << "a refused merge must not write the merged store";
}

TEST(MergeTool, CleanMergeSplicesEveryReplicationInIndexOrder) {
    fixture f("csense_merge_clean");
    const auto result = merge_shard_stores(f.shards, f.out, std::nullopt);
    ASSERT_TRUE(result.issues.empty());
    EXPECT_EQ(result.records_merged, static_cast<std::size_t>(kReps));
    ASSERT_TRUE(result.manifest.has_value());
    EXPECT_EQ(result.manifest->seed, 1u);
    EXPECT_EQ(result.manifest->filter, "fake");
    result_store merged(f.out, std::string(kBenchStoreSchema));
    for (std::int64_t j = 0; j < kReps; ++j) {
        const auto payload = merged.load(rep_key(j));
        ASSERT_TRUE(payload.has_value()) << "rep " << j;
        EXPECT_EQ(*payload, rep_payload(j));
    }
}

TEST(MergeTool, MatchingEnvFingerprintPasses) {
    fixture f("csense_merge_env_ok");
    const auto result =
        merge_shard_stores(f.shards, f.out, std::string(""));
    EXPECT_TRUE(result.issues.empty());
}

TEST(MergeTool, EnvFingerprintMismatchIsMissingShardClass) {
    // Shards ran under different CSENSE_* knobs than the merge: the JSON
    // replay would be keyed to an environment that never ran.
    fixture f("csense_merge_env_bad");
    const auto result = merge_shard_stores(
        f.shards, f.out, std::string("CSENSE_FAST=1"));
    expect_refused(result, merge_issue_kind::env_mismatch,
                   kMergeMissingShard, f.out);
}

TEST(MergeTool, CorruptRecordIsReportedPerKey) {
    // A torn write, simulated with the store's fs_hooks: the temp file
    // holds half the record image when the rename happens.
    shard_build torn;
    torn.hooks.write_file = [](const fs::path& path,
                               std::string_view data) {
        std::ofstream outf(path, std::ios::binary | std::ios::trunc);
        outf.write(data.data(),
                   static_cast<std::streamsize>(data.size() / 2));
        return outf.good();
    };
    // Only rep records suffer the torn write; the manifest is written
    // separately below so pass 1 reaches ownership validation.
    torn.manifest = false;
    fixture f("csense_merge_corrupt", {shard_build{}, torn});
    {
        result_store store(f.shards[1], std::string(kBenchStoreSchema));
        ASSERT_TRUE(store.put(kManifestKey,
                              encode_manifest(manifest_for(1))));
    }
    const auto result = merge_shard_stores(f.shards, f.out, std::nullopt);
    expect_refused(result, merge_issue_kind::corrupt_record, kMergeCorrupt,
                   f.out);
    // The truncated records also read as coverage gaps — both facts are
    // reported, corruption wins the exit code.
    bool gap = false;
    for (const auto& issue : result.issues) {
        gap |= issue.kind == merge_issue_kind::coverage_gap;
    }
    EXPECT_TRUE(gap);
}

TEST(MergeTool, StaleSchemaRecordIsReportedNotMerged) {
    shard_build stale;
    stale.schema = "csense-bench/0";
    stale.manifest = false;
    fixture f("csense_merge_stale", {shard_build{}, stale});
    {
        // The manifest itself must carry the current schema or pass 1
        // reports the shard as stale before ownership runs.
        result_store store(f.shards[1], std::string(kBenchStoreSchema));
        ASSERT_TRUE(store.put(kManifestKey,
                              encode_manifest(manifest_for(1))));
    }
    const auto result = merge_shard_stores(f.shards, f.out, std::nullopt);
    expect_refused(result, merge_issue_kind::stale_schema, kMergeStale,
                   f.out);
}

TEST(MergeTool, MissingShardDirectoryIsReported) {
    fixture f("csense_merge_missing_dir");
    fs::remove_all(f.shards[2]);
    const auto result = merge_shard_stores(f.shards, f.out, std::nullopt);
    expect_refused(result, merge_issue_kind::missing_shard,
                   kMergeMissingShard, f.out);
}

TEST(MergeTool, MissingManifestMeansIncompleteShardRun) {
    // Records but no manifest — exactly what a shard killed mid-run
    // leaves behind.
    shard_build incomplete;
    incomplete.manifest = false;
    fixture f("csense_merge_no_manifest",
              {shard_build{}, shard_build{}, incomplete});
    const auto result = merge_shard_stores(f.shards, f.out, std::nullopt);
    expect_refused(result, merge_issue_kind::missing_shard,
                   kMergeMissingShard, f.out);
    bool explained = false;
    for (const auto& issue : result.issues) {
        explained |= issue.detail.find("did not complete") !=
                     std::string::npos;
    }
    EXPECT_TRUE(explained);
}

TEST(MergeTool, TwoShardsClaimingOneReplicationIsADuplicate) {
    // Replication 1 belongs to shard 1; shard 0 holds a copy anyway.
    shard_build overreach;
    overreach.foreign_rep = 1;
    fixture f("csense_merge_duplicate", {overreach});
    const auto result = merge_shard_stores(f.shards, f.out, std::nullopt);
    expect_refused(result, merge_issue_kind::duplicate_claim,
                   kMergeDuplicate, f.out);
}

TEST(MergeTool, MissingOwnedReplicationIsACoverageGap) {
    shard_build gappy;
    gappy.skip_rep = 4;  // shard 1 owns {1, 4}
    fixture f("csense_merge_gap", {shard_build{}, gappy});
    const auto result = merge_shard_stores(f.shards, f.out, std::nullopt);
    expect_refused(result, merge_issue_kind::coverage_gap, kMergeGap,
                   f.out);
    ASSERT_EQ(result.issues.size(), 1u);
    EXPECT_EQ(result.issues[0].shard, 1);
    EXPECT_EQ(result.issues[0].key, rep_key(4));
}

TEST(MergeTool, ShardsPassedInWrongOrderAreAMismatch) {
    fixture f("csense_merge_swapped");
    const std::vector<fs::path> swapped = {f.shards[1], f.shards[0],
                                           f.shards[2]};
    const auto result = merge_shard_stores(swapped, f.out, std::nullopt);
    expect_refused(result, merge_issue_kind::manifest_mismatch,
                   kMergeMissingShard, f.out);
}

TEST(MergeTool, MissingShardOutranksEveryOtherIssue) {
    // Precedence: an incomplete shard set invalidates finer diagnostics.
    shard_build gappy;
    gappy.skip_rep = 0;
    fixture f("csense_merge_precedence", {gappy});
    fs::remove_all(f.shards[2]);
    const auto result = merge_shard_stores(f.shards, f.out, std::nullopt);
    EXPECT_EQ(merge_exit_code(result.issues), kMergeMissingShard);
}

// --- the csense_merge binary: pinned CLI exit codes -------------------
// (compiled only when the tools subtree provides the binary)

#ifdef CSENSE_MERGE_BINARY

int run_merge(const fixture& f, const std::string& extra_args,
              const fs::path& log) {
    std::string dirs;
    for (const auto& shard : f.shards) dirs += "\"" + shard.string() + "\" ";
    const std::string command =
        "\"" + std::string(CSENSE_MERGE_BINARY) + "\" --out \"" +
        f.out.string() + "\" " + dirs + "--no-env-check " + extra_args +
        " > \"" + log.string() + "\" 2>&1";
    return CSENSE_EXIT(std::system(command.c_str()));
}

TEST(MergeTool, BinaryExitCodesMatchTheDocumentedTaxonomy) {
    fixture clean("csense_merge_cli_clean");
    EXPECT_EQ(run_merge(clean, "", clean.base / "log.txt"), kMergeOk);

    shard_build incomplete;
    incomplete.manifest = false;
    fixture missing("csense_merge_cli_missing",
                    {shard_build{}, shard_build{}, incomplete});
    EXPECT_EQ(run_merge(missing, "", missing.base / "log.txt"),
              kMergeMissingShard);
    const std::string log = [&] {
        std::ifstream in(missing.base / "log.txt", std::ios::binary);
        std::ostringstream buffer;
        buffer << in.rdbuf();
        return buffer.str();
    }();
    EXPECT_NE(log.find("missing-shard"), std::string::npos) << log;
    EXPECT_NE(log.find("merged store NOT written"), std::string::npos)
        << log;

    shard_build gappy;
    gappy.skip_rep = 4;
    fixture gap("csense_merge_cli_gap", {shard_build{}, gappy});
    EXPECT_EQ(run_merge(gap, "", gap.base / "log.txt"), kMergeGap);
}

TEST(MergeTool, BinaryUsageErrorsExitTwo) {
    const fs::path base =
        fs::path(::testing::TempDir()) / "csense_merge_cli_usage";
    fs::remove_all(base);
    fs::create_directories(base);
    const auto run = [&](const std::string& args) {
        const std::string command = "\"" +
                                    std::string(CSENSE_MERGE_BINARY) + "\" " +
                                    args + " > \"" +
                                    (base / "log.txt").string() + "\" 2>&1";
        return CSENSE_EXIT(std::system(command.c_str()));
    };
    EXPECT_EQ(run(""), kMergeUsage);                       // no --out
    EXPECT_EQ(run("--out " + (base / "m").string()), kMergeUsage);
    EXPECT_EQ(run("--bogus"), kMergeUsage);
}

#endif  // CSENSE_MERGE_BINARY

}  // namespace
