// Censored maximum-likelihood propagation fitting (the Figure 14
// estimator): parameter recovery, censoring-bias direction, and the
// truncated variant.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "src/propagation/ml_fit.hpp"
#include "src/stats/rng.hpp"

namespace {

using namespace csense::propagation;

std::vector<rssi_observation> synthesize(double alpha, double sigma,
                                         double rssi0, double ref,
                                         double threshold, int n,
                                         std::uint64_t seed,
                                         double log_d_hi = 2.2) {
    csense::stats::rng gen(seed);
    std::vector<rssi_observation> data;
    data.reserve(n);
    for (int i = 0; i < n; ++i) {
        rssi_observation obs;
        obs.distance = std::pow(10.0, gen.uniform(0.3, log_d_hi));
        const double mean =
            rssi0 - 10.0 * alpha * std::log10(obs.distance / ref);
        const double snr = mean + sigma * gen.normal();
        if (snr < threshold) {
            obs.censored = true;
        } else {
            obs.snr_db = snr;
        }
        data.push_back(obs);
    }
    return data;
}

class FitSigma : public ::testing::TestWithParam<double> {};

TEST_P(FitSigma, RecoversParameters) {
    const double sigma = GetParam();
    const auto data = synthesize(3.5, sigma, 45.0, 20.0, 4.0, 3000, 17);
    const auto fit = fit_path_loss(data, 20.0, 4.0);
    EXPECT_NEAR(fit.alpha, 3.5, 0.25) << "sigma = " << sigma;
    EXPECT_NEAR(fit.sigma_db, sigma, 0.6) << "sigma = " << sigma;
    EXPECT_NEAR(fit.rssi0_db, 45.0, 2.0) << "sigma = " << sigma;
}

INSTANTIATE_TEST_SUITE_P(Sigmas, FitSigma, ::testing::Values(4.0, 8.0, 10.4));

TEST(Fit, NaiveEstimatorBiasedLowInAlpha) {
    // Dropping invisible links keeps only lucky (high-shadow) samples at
    // long distance, flattening the apparent slope.
    // Extend the survey deep into the censored regime (distances to
    // ~600 units, where the mean SNR sits far below the floor): only
    // lucky shadows survive out there, and dropping the invisible links
    // visibly flattens the naive slope.
    const auto data = synthesize(3.5, 10.0, 45.0, 20.0, 4.0, 4000, 23, 2.8);
    int censored = 0;
    for (const auto& obs : data) censored += obs.censored ? 1 : 0;
    ASSERT_GT(censored, 400);  // the effect needs real censoring
    const auto corrected = fit_path_loss(data, 20.0, 4.0,
                                         censoring_mode::censored);
    const auto naive = fit_path_loss(data, 20.0, 4.0, censoring_mode::ignore);
    EXPECT_LT(naive.alpha, corrected.alpha - 0.2);
    EXPECT_NEAR(corrected.alpha, 3.5, 0.3);
}

TEST(Fit, TruncatedModeAlsoCorrects) {
    auto data = synthesize(3.5, 10.0, 45.0, 20.0, 4.0, 4000, 29);
    // Truncated data sets do not even contain the censored records.
    std::vector<rssi_observation> visible;
    for (const auto& obs : data) {
        if (!obs.censored) visible.push_back(obs);
    }
    const auto fit = fit_path_loss(visible, 20.0, 4.0,
                                   censoring_mode::truncated);
    EXPECT_NEAR(fit.alpha, 3.5, 0.35);
    EXPECT_NEAR(fit.sigma_db, 10.0, 1.2);
}

TEST(Fit, NoCensoringAllModesAgree) {
    const auto data = synthesize(3.0, 6.0, 40.0, 20.0, -1000.0, 2000, 31);
    const auto a = fit_path_loss(data, 20.0, -1000.0, censoring_mode::censored);
    const auto b = fit_path_loss(data, 20.0, -1000.0, censoring_mode::ignore);
    EXPECT_NEAR(a.alpha, b.alpha, 0.05);
    EXPECT_NEAR(a.sigma_db, b.sigma_db, 0.1);
}

TEST(Fit, MeanPrediction) {
    path_loss_fit fit;
    fit.alpha = 3.0;
    fit.sigma_db = 8.0;
    fit.rssi0_db = 40.0;
    EXPECT_NEAR(fit_mean_snr_db(fit, 20.0, 20.0), 40.0, 1e-12);
    EXPECT_NEAR(fit_mean_snr_db(fit, 20.0, 200.0), 10.0, 1e-12);
    EXPECT_THROW(fit_mean_snr_db(fit, 20.0, 0.0), std::domain_error);
}

TEST(Fit, RejectsEmptyData) {
    EXPECT_THROW(fit_path_loss({}, 20.0, 4.0), std::invalid_argument);
}

}  // namespace
