// Monte Carlo engine: estimates, common-random-numbers reproducibility,
// and adaptive stopping.
#include <gtest/gtest.h>

#include <cmath>

#include "src/stats/monte_carlo.hpp"

namespace {

using namespace csense::stats;

TEST(MonteCarlo, EstimatesUniformMean) {
    rng base(7);
    const auto est = mc_expectation(
        [](rng& gen) { return gen.uniform(); }, base, 100000);
    EXPECT_EQ(est.samples, 100000u);
    EXPECT_NEAR(est.mean, 0.5, 4.0 * est.stderr_mean);
    EXPECT_NEAR(est.stderr_mean, std::sqrt(1.0 / 12.0 / 100000.0), 2e-4);
}

TEST(MonteCarlo, CommonRandomNumbers) {
    // Two different integrands with the same base seed consume identical
    // per-sample streams: a monotone transformation preserves ordering
    // sample by sample, so the difference estimate is low-noise.
    rng base(42);
    const std::size_t n = 20000;
    const auto a = mc_expectation([](rng& g) { return g.uniform(); }, base, n);
    const auto b = mc_expectation(
        [](rng& g) { return g.uniform() + 0.001; }, base, n);
    EXPECT_NEAR(b.mean - a.mean, 0.001, 1e-12);
}

TEST(MonteCarlo, DeterministicAcrossCalls) {
    rng base(9);
    const auto a = mc_expectation([](rng& g) { return g.normal(); }, base, 5000);
    const auto b = mc_expectation([](rng& g) { return g.normal(); }, base, 5000);
    EXPECT_DOUBLE_EQ(a.mean, b.mean);
}

TEST(MonteCarlo, AdaptiveStopsAtTarget) {
    rng base(11);
    const auto est = mc_expectation_adaptive(
        [](rng& g) { return g.uniform(); }, base, 0.01, 1000000, 1000);
    EXPECT_LE(est.stderr_mean, 0.01);
    EXPECT_LT(est.samples, 10000u);  // 0.01 stderr needs ~833 samples
    EXPECT_NEAR(est.mean, 0.5, 5.0 * est.stderr_mean);
}

TEST(MonteCarlo, AdaptiveRespectsMaxSamples) {
    rng base(13);
    const auto est = mc_expectation_adaptive(
        [](rng& g) { return g.normal(); }, base, 1e-9, 5000, 1000);
    EXPECT_EQ(est.samples, 5000u);
}

}  // namespace
