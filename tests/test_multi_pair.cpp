// Many-pair scenario engine: topology sampling, the analytic prediction,
// and packet-level runs under cumulative interference.
#include <gtest/gtest.h>

#include <cmath>

#include "src/capacity/rate_table.hpp"
#include "src/mac/multi_pair.hpp"

namespace {

using namespace csense;
using namespace csense::mac;

multi_pair_config test_config(double duration_us = 3e5) {
    multi_pair_config config;
    config.rate = &capacity::rate_by_mbps(6.0);
    config.duration_us = duration_us;
    config.seed = 11;
    return config;
}

TEST(MultiPair, TopologySamplingRespectsGeometry) {
    stats::rng gen(5);
    const auto topology = sample_multi_pair_topology(12, 200.0, 30.0, gen);
    ASSERT_EQ(topology.pairs(), 12u);
    for (std::size_t i = 0; i < topology.pairs(); ++i) {
        const auto& s = topology.senders[i];
        const auto& r = topology.receivers[i];
        EXPECT_GE(s.x, 0.0);
        EXPECT_LE(s.x, 200.0);
        EXPECT_GE(s.y, 0.0);
        EXPECT_LE(s.y, 200.0);
        EXPECT_LE(std::hypot(s.x - r.x, s.y - r.y), 30.0 + 1e-9);
    }
}

TEST(MultiPair, GainFollowsLogDistanceAndClampsBelowOneMeter) {
    const auto config = test_config();
    EXPECT_NEAR(config.gain_db(1.0), -47.0, 1e-12);
    EXPECT_NEAR(config.gain_db(10.0), -47.0 - 30.0, 1e-9);   // alpha 3
    EXPECT_NEAR(config.gain_db(100.0), -47.0 - 60.0, 1e-9);
    EXPECT_NEAR(config.gain_db(0.01), config.gain_db(1.0), 1e-12);
}

TEST(MultiPair, PredictionMuxSharesAndInterferenceOrdering) {
    // Two far-apart pairs: concurrency wins. The same two pairs stacked
    // close together: TDMA wins and the cluster defers.
    multi_pair_topology far;
    far.senders = {{0.0, 0.0}, {500.0, 0.0}};
    far.receivers = {{10.0, 0.0}, {510.0, 0.0}};
    multi_pair_topology close = far;
    close.senders[1] = {30.0, 0.0};
    close.receivers[1] = {40.0, 0.0};

    const auto config = test_config();
    const auto far_pred = predict_multi_pair(far, config);
    const auto close_pred = predict_multi_pair(close, config);
    EXPECT_GT(far_pred.concurrent, far_pred.multiplexing);
    EXPECT_FALSE(far_pred.cs_defers);
    EXPECT_LT(close_pred.concurrent, close_pred.multiplexing);
    EXPECT_TRUE(close_pred.cs_defers);
    // TDMA per-pair share halves with two pairs on clean links.
    EXPECT_NEAR(far_pred.multiplexing, 0.5 * far_pred.concurrent, 0.05);
}

TEST(MultiPair, RunDeliversAndIsDeterministic) {
    stats::rng gen(17);
    const auto topology = sample_multi_pair_topology(5, 150.0, 20.0, gen);
    const auto config = test_config();
    const auto a = run_multi_pair(topology, config);
    const auto b = run_multi_pair(topology, config);
    ASSERT_EQ(a.per_pair_pps.size(), 5u);
    EXPECT_GT(a.total_pps, 0.0);
    EXPECT_EQ(a.total_pps, b.total_pps);
    for (std::size_t i = 0; i < 5; ++i) {
        EXPECT_EQ(a.per_pair_pps[i], b.per_pair_pps[i]);
    }
    EXPECT_GE(a.jain_index(), 0.0);
    EXPECT_LE(a.jain_index(), 1.0 + 1e-12);
}

TEST(MultiPair, CumulativeInterferenceDegradesDenseNetworks) {
    // The same arena packed with more senders and carrier sense off:
    // per-pair delivery must fall (the cumulative-interference effect
    // pairwise models understate).
    auto config = test_config();
    config.sense = cs_mode::disabled;
    stats::rng gen(23);
    const auto sparse = sample_multi_pair_topology(3, 120.0, 20.0, gen);
    stats::rng gen2(23);
    const auto dense = sample_multi_pair_topology(16, 120.0, 20.0, gen2);
    const auto sparse_run = run_multi_pair(sparse, config);
    const auto dense_run = run_multi_pair(dense, config);
    const double sparse_per_pair = sparse_run.total_pps / 3.0;
    const double dense_per_pair = dense_run.total_pps / 16.0;
    EXPECT_LT(dense_per_pair, sparse_per_pair);
}

TEST(MultiPair, RejectsBadArguments) {
    stats::rng gen(1);
    EXPECT_THROW(sample_multi_pair_topology(0, 100.0, 10.0, gen),
                 std::invalid_argument);
    EXPECT_THROW(sample_multi_pair_topology(4, -1.0, 10.0, gen),
                 std::invalid_argument);
    multi_pair_topology topology;
    EXPECT_THROW(run_multi_pair(topology, test_config()),
                 std::invalid_argument);
    topology.senders = {{0.0, 0.0}};
    topology.receivers = {{5.0, 0.0}};
    auto config = test_config();
    config.rate = nullptr;
    EXPECT_THROW(run_multi_pair(topology, config), std::invalid_argument);
    EXPECT_THROW(predict_multi_pair(multi_pair_topology{}, test_config()),
                 std::invalid_argument);
}

}  // namespace
