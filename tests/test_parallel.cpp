// Unit tests for the deterministic parallel runtime (src/core/parallel):
// edge cases (empty range, range smaller than the thread count),
// exception propagation, nested-call serial fallback, worker-count
// resolution, and the central guarantee - parallel_reduce reproduces the
// serial left fold bit-for-bit at every thread count.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <stdexcept>
#include <vector>

#include "src/core/parallel.hpp"

namespace {

using csense::core::parallel_for;
using csense::core::parallel_reduce;
using csense::core::resolve_threads;
using csense::core::thread_pool;

TEST(ResolveThreads, ExplicitCountWins) {
    EXPECT_EQ(resolve_threads(1), 1);
    EXPECT_EQ(resolve_threads(7), 7);
}

TEST(ResolveThreads, NegativeThrows) {
    EXPECT_THROW(resolve_threads(-1), std::invalid_argument);
}

TEST(ResolveThreads, EnvironmentOverridesAuto) {
    ASSERT_EQ(setenv("CSENSE_THREADS", "5", 1), 0);
    EXPECT_EQ(resolve_threads(0), 5);
    ASSERT_EQ(setenv("CSENSE_THREADS", "garbage", 1), 0);
    EXPECT_GE(resolve_threads(0), 1);  // unparsable: fall through to auto
    ASSERT_EQ(unsetenv("CSENSE_THREADS"), 0);
    EXPECT_GE(resolve_threads(0), 1);
}

TEST(ParallelFor, EmptyRangeNeverInvokesBody) {
    bool invoked = false;
    parallel_for(4, 0, 8, [&](std::size_t, std::size_t) { invoked = true; });
    EXPECT_FALSE(invoked);
}

TEST(ParallelFor, ZeroGrainThrows) {
    EXPECT_THROW(parallel_for(2, 10, 0, [](std::size_t, std::size_t) {}),
                 std::invalid_argument);
}

TEST(ParallelFor, RangeSmallerThanThreadCount) {
    std::vector<std::atomic<int>> hits(3);
    parallel_for(8, 3, 1, [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
    });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, EveryIndexVisitedExactlyOnce) {
    constexpr std::size_t count = 10'000;
    std::vector<int> hits(count, 0);  // distinct indices: no races
    parallel_for(4, count, 7, [&](std::size_t begin, std::size_t end) {
        ASSERT_LT(begin, end);
        ASSERT_LE(end, count);
        ASSERT_LE(end - begin, 7u);
        for (std::size_t i = begin; i < end; ++i) ++hits[i];
    });
    for (std::size_t i = 0; i < count; ++i) {
        ASSERT_EQ(hits[i], 1) << "index " << i;
    }
}

TEST(ParallelFor, ChunkBoundariesIndependentOfThreadCount) {
    constexpr std::size_t count = 100;
    const auto boundaries_at = [&](int threads) {
        std::vector<std::pair<std::size_t, std::size_t>> chunks(
            (count + 8) / 9);
        parallel_for(threads, count, 9,
                     [&](std::size_t begin, std::size_t end) {
                         chunks[begin / 9] = {begin, end};
                     });
        return chunks;
    };
    const auto serial = boundaries_at(1);
    EXPECT_EQ(boundaries_at(2), serial);
    EXPECT_EQ(boundaries_at(8), serial);
}

TEST(ParallelFor, ExceptionPropagates) {
    for (int threads : {1, 4}) {
        EXPECT_THROW(
            parallel_for(threads, 100, 1,
                         [](std::size_t begin, std::size_t) {
                             if (begin == 57) {
                                 throw std::runtime_error("task 57 failed");
                             }
                         }),
            std::runtime_error)
            << "threads = " << threads;
    }
}

TEST(ParallelFor, PoolSurvivesAThrowingJob) {
    EXPECT_THROW(parallel_for(4, 16, 1,
                              [](std::size_t, std::size_t) {
                                  throw std::domain_error("poisoned");
                              }),
                 std::domain_error);
    // The pool must still schedule follow-up work normally.
    std::atomic<int> total{0};
    parallel_for(4, 64, 4, [&](std::size_t begin, std::size_t end) {
        total.fetch_add(static_cast<int>(end - begin));
    });
    EXPECT_EQ(total.load(), 64);
}

TEST(ParallelReduce, EmptyRangeIsZero) {
    const double sum = parallel_reduce(
        4, 0, [](std::size_t) -> double { ADD_FAILURE(); return 1.0; });
    EXPECT_EQ(sum, 0.0);
}

TEST(ParallelReduce, MatchesSerialLeftFoldBitwise) {
    // Terms of wildly different magnitudes, so any change in association
    // order would move the low bits of the sum.
    constexpr std::size_t count = 257;
    const auto term = [](std::size_t i) {
        const double x = static_cast<double>(i);
        return std::sin(x) * std::pow(10.0, static_cast<double>(i % 17) - 8.0);
    };
    double serial = 0.0;
    for (std::size_t i = 0; i < count; ++i) serial += term(i);
    for (int threads : {1, 2, 3, 4, 8}) {
        const double parallel = parallel_reduce(threads, count, term);
        EXPECT_EQ(parallel, serial) << "threads = " << threads;
    }
}

TEST(ParallelReduce, NestedCallsFallBackToSerial) {
    // A reduce inside a parallel_for body must not deadlock, and the
    // inner result must be the plain serial sum.
    constexpr std::size_t outer = 8;
    std::vector<double> results(outer, 0.0);
    parallel_for(4, outer, 1, [&](std::size_t begin, std::size_t) {
        results[begin] = parallel_reduce(4, 100, [&](std::size_t i) {
            return static_cast<double>(begin * 1000 + i);
        });
    });
    for (std::size_t o = 0; o < outer; ++o) {
        double expected = 0.0;
        for (std::size_t i = 0; i < 100; ++i) {
            expected += static_cast<double>(o * 1000 + i);
        }
        EXPECT_EQ(results[o], expected) << "outer " << o;
    }
}

TEST(ThreadPool, OnWorkerThreadReportsCorrectly) {
    EXPECT_FALSE(thread_pool::on_worker_thread());
    std::atomic<int> worker_sightings{0};
    parallel_for(4, 64, 1, [&](std::size_t, std::size_t) {
        if (thread_pool::on_worker_thread()) worker_sightings.fetch_add(1);
    });
    // The caller participates too, so not every chunk runs on a pool
    // worker; the flag only needs to be set somewhere off-caller when
    // real workers exist.
    EXPECT_FALSE(thread_pool::on_worker_thread());
    (void)worker_sightings;
}

}  // namespace
