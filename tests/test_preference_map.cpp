// Receiver preference maps (Figure 3): classification logic and the
// thesis' qualitative claims about who prefers what at D = 20/55/120.
#include <gtest/gtest.h>

#include <cmath>

#include "src/core/preference_map.hpp"

namespace {

using namespace csense::core;

model_params fig3_params() {
    model_params p;
    p.alpha = 3.0;
    p.sigma_db = 0.0;  // built-in convention, but be explicit
    p.noise_db = -65.0;
    return p;
}

TEST(PreferenceMap, GeometryAndBounds) {
    const auto map = build_preference_map(fig3_params(), 55.0, 55.0, 60.0, 41);
    EXPECT_EQ(map.resolution, 41);
    EXPECT_EQ(map.cells.size(), 41u * 41u);
    EXPECT_NO_THROW(map.at(0, 0));
    EXPECT_NO_THROW(map.at(40, 40));
    EXPECT_THROW(map.at(41, 0), std::out_of_range);
    // Corner cells lie outside the Rmax disc.
    EXPECT_FALSE(map.at(0, 0).inside);
    // Near-center cells lie inside.
    EXPECT_TRUE(map.at(20, 21).inside);
}

TEST(PreferenceMap, NearInterfererEveryonePrefersMultiplexing) {
    // Fig. 3 at D = 20: "a single choice, multiplexing, is optimal for
    // all Rmax up to about 100" - concurrency holds only in a tiny
    // sliver around the sender.
    const auto map = build_preference_map(fig3_params(), 20.0, 100.0, 100.0, 81);
    const auto summary = summarize(map);
    EXPECT_GT(summary.fraction_multiplexing, 0.95);
    EXPECT_LT(summary.fraction_concurrency, 0.05);
}

TEST(PreferenceMap, FarInterfererEveryonePrefersConcurrency) {
    // Fig. 3 at D = 120: "pure concurrency is optimal for all Rmax up to
    // about 50".
    const auto map = build_preference_map(fig3_params(), 120.0, 50.0, 50.0, 81);
    const auto summary = summarize(map);
    EXPECT_GT(summary.fraction_concurrency, 0.95);
}

TEST(PreferenceMap, TransitionSplitsReceivers) {
    // Fig. 3 at D = 55: "receivers are split nearly down the middle".
    const auto map = build_preference_map(fig3_params(), 55.0, 100.0, 100.0, 81);
    const auto summary = summarize(map);
    EXPECT_GT(summary.fraction_concurrency, 0.25);
    EXPECT_LT(summary.fraction_concurrency, 0.75);
}

TEST(PreferenceMap, StarvedRegionHugsInterferer) {
    // Receivers near the interferer get < 10% of C_UBmax under
    // concurrency: the white region of Fig. 3 sits on the -x axis around
    // the interferer position.
    const auto map = build_preference_map(fig3_params(), 55.0, 100.0, 100.0, 101);
    const auto summary = summarize(map);
    EXPECT_GT(summary.fraction_starved, 0.005);
    // Find a starved cell and confirm it is near the interferer at
    // (-55, 0); confirm cells near the sender are not starved.
    bool found_near_interferer = false;
    for (const auto& cell : map.cells) {
        if (!cell.inside) continue;
        if (cell.preference == receiver_preference::starved_multiplexing) {
            const double dist_interferer =
                std::hypot(cell.x + 55.0, cell.y);
            if (dist_interferer < 30.0) found_near_interferer = true;
            const double dist_sender = std::hypot(cell.x, cell.y);
            EXPECT_GT(dist_sender, 20.0);
        }
    }
    EXPECT_TRUE(found_near_interferer);
}

TEST(PreferenceMap, CapacitiesStoredConsistently) {
    const auto map = build_preference_map(fig3_params(), 55.0, 60.0, 60.0, 41);
    for (const auto& cell : map.cells) {
        if (!cell.inside) continue;
        if (cell.preference == receiver_preference::concurrency) {
            EXPECT_GE(cell.capacity_concurrent, cell.capacity_multiplexing);
        } else {
            EXPECT_LT(cell.capacity_concurrent, cell.capacity_multiplexing);
        }
    }
}

TEST(PreferenceMap, SummaryFractionsSumToOne) {
    const auto map = build_preference_map(fig3_params(), 55.0, 80.0, 80.0, 61);
    const auto summary = summarize(map);
    EXPECT_NEAR(summary.fraction_concurrency + summary.fraction_multiplexing,
                1.0, 1e-12);
    EXPECT_LE(summary.fraction_starved, summary.fraction_multiplexing);
    EXPECT_GT(summary.cells_inside, 0);
}

TEST(PreferenceMap, RejectsBadGeometry) {
    EXPECT_THROW(build_preference_map(fig3_params(), 55.0, 50.0, 50.0, 1),
                 std::invalid_argument);
    EXPECT_THROW(build_preference_map(fig3_params(), 55.0, 0.0, 50.0, 11),
                 std::invalid_argument);
}

}  // namespace
