// Propagation models: unit conversions, path-loss slopes, the two-ray
// far-field law, floor attenuation, shadowing fields, wideband fading
// collapse, and the §3.4 barrier physics (knife-edge diffraction, wall
// and reflection losses).
#include <gtest/gtest.h>

#include <cmath>

#include "src/propagation/channel_model.hpp"
#include "src/propagation/diffraction.hpp"
#include "src/propagation/fading.hpp"
#include "src/propagation/path_loss.hpp"
#include "src/propagation/shadowing.hpp"
#include "src/propagation/units.hpp"

namespace {

using namespace csense::propagation;

TEST(Units, DbRoundTrip) {
    for (double db : {-40.0, -3.0, 0.0, 3.0, 20.0}) {
        EXPECT_NEAR(linear_to_db(db_to_linear(db)), db, 1e-12);
    }
    EXPECT_NEAR(db_to_linear(3.0), 1.9952623149688795, 1e-12);
    EXPECT_THROW(linear_to_db(0.0), std::domain_error);
    EXPECT_THROW(linear_to_db(-1.0), std::domain_error);
}

TEST(Units, DbmMilliwatt) {
    EXPECT_NEAR(dbm_to_mw(0.0), 1.0, 1e-12);
    EXPECT_NEAR(dbm_to_mw(30.0), 1000.0, 1e-9);
    EXPECT_NEAR(mw_to_dbm(100.0), 20.0, 1e-12);
}

TEST(Units, Wavelength) {
    EXPECT_NEAR(wavelength_m(2.4e9), 0.1249, 1e-3);
    EXPECT_NEAR(wavelength_m(5.2e9), 0.0577, 1e-3);
    EXPECT_THROW(wavelength_m(0.0), std::domain_error);
}

TEST(Units, Distances) {
    EXPECT_DOUBLE_EQ(distance(position{0, 0}, position{3, 4}), 5.0);
    EXPECT_DOUBLE_EQ(distance(position3{0, 0, 0}, position3{2, 3, 6}), 7.0);
}

class PathLossExponent : public ::testing::TestWithParam<double> {};

TEST_P(PathLossExponent, SlopeIs10AlphaPerDecade) {
    const double alpha = GetParam();
    power_law_path_loss model(alpha, 40.0);
    EXPECT_NEAR(model.loss_db(10.0) - model.loss_db(1.0), 10.0 * alpha, 1e-10);
    EXPECT_NEAR(model.loss_db(100.0) - model.loss_db(10.0), 10.0 * alpha, 1e-10);
    EXPECT_NEAR(model.loss_db(1.0), 40.0, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Alphas, PathLossExponent,
                         ::testing::Values(2.0, 3.0, 3.5, 4.0));

TEST(PathLoss, RejectsBadInput) {
    power_law_path_loss model(3.0, 40.0);
    EXPECT_THROW(model.loss_db(0.0), std::domain_error);
    EXPECT_THROW(power_law_path_loss(3.0, 40.0, 0.0), std::invalid_argument);
}

TEST(FreeSpace, MatchesFriisAtReference) {
    free_space_path_loss model(2.4e9);
    // Friis at 1 m, 2.4 GHz: 20 log10(4 pi / lambda) ~ 40.05 dB.
    EXPECT_NEAR(model.loss_db(1.0), 40.05, 0.1);
    // 20 dB per decade.
    EXPECT_NEAR(model.loss_db(100.0) - model.loss_db(10.0), 20.0, 1e-9);
}

TEST(TwoRay, FourthPowerBeyondCrossover) {
    two_ray_path_loss model(2.4e9, 10.0, 2.0);
    const double dc = model.crossover_distance_m();
    EXPECT_GT(dc, 100.0);
    // Well beyond crossover the slope approaches 40 dB per decade.
    const double slope =
        model.loss_db(100.0 * dc) - model.loss_db(10.0 * dc);
    EXPECT_NEAR(slope, 40.0, 1.0);
}

TEST(TwoRay, NearFieldOscillatesAroundFreeSpace) {
    two_ray_path_loss model(2.4e9, 10.0, 2.0);
    free_space_path_loss fs(2.4e9);
    // Close in, the two-ray loss oscillates within ~6 dB of free space
    // (constructive doubling) and deep nulls the other way.
    const double d = model.crossover_distance_m() / 30.0;
    EXPECT_GT(model.loss_db(d), fs.loss_db(d) - 7.0);
}

TEST(IndoorFloors, AttenuationPerFloor) {
    indoor_floor_path_loss model(3.0, 40.0, 9.0, 0);
    EXPECT_NEAR(model.loss_db(10.0, 2) - model.loss_db(10.0, 0), 18.0, 1e-12);
    EXPECT_THROW(indoor_floor_path_loss(3.0, 40.0, 9.0, -1),
                 std::invalid_argument);
}

TEST(IidShadowing, DeterministicAndSymmetric) {
    iid_shadowing field(8.0, 77);
    EXPECT_DOUBLE_EQ(field.shadow_db(3, 9), field.shadow_db(9, 3));
    EXPECT_DOUBLE_EQ(field.shadow_db(3, 9), field.shadow_db(3, 9));
    iid_shadowing same(8.0, 77);
    EXPECT_DOUBLE_EQ(field.shadow_db(1, 2), same.shadow_db(1, 2));
    iid_shadowing other(8.0, 78);
    EXPECT_NE(field.shadow_db(1, 2), other.shadow_db(1, 2));
}

TEST(IidShadowing, MomentsAcrossLinks) {
    iid_shadowing field(8.0, 5);
    double sum = 0.0, sum2 = 0.0;
    int n = 0;
    for (std::uint32_t a = 0; a < 80; ++a) {
        for (std::uint32_t b = a + 1; b < 80; ++b) {
            const double s = field.shadow_db(a, b);
            sum += s;
            sum2 += s * s;
            ++n;
        }
    }
    const double mean = sum / n;
    EXPECT_NEAR(mean, 0.0, 0.3);
    EXPECT_NEAR(std::sqrt(sum2 / n - mean * mean), 8.0, 0.3);
}

TEST(CorrelatedShadowing, NearbyLinksCorrelate) {
    correlated_shadowing field(8.0, 20.0, 99);
    // Two links sharing an endpoint region should be similar; links far
    // apart should not. Compare average squared difference.
    double near_diff = 0.0, far_diff = 0.0;
    const int n = 200;
    for (int i = 0; i < n; ++i) {
        const double off = i * 0.01;
        const position a{10.0 + off, 10.0};
        const position b{40.0, 10.0};
        const position a2{11.0 + off, 10.5};  // 1 m from a
        const position far{900.0 + off * 7.0, 800.0};
        const double base = field.shadow_db(a, b);
        near_diff += std::pow(base - field.shadow_db(a2, b), 2);
        far_diff += std::pow(base - field.shadow_db(far, b), 2);
    }
    EXPECT_LT(near_diff / n, far_diff / n / 4.0);
}

TEST(CorrelatedShadowing, VarianceApproximatelySigmaSquared) {
    const double sigma = 8.0;
    correlated_shadowing field(sigma, 20.0, 123);
    csense::stats::rng gen(4);
    double sum = 0.0, sum2 = 0.0;
    const int n = 4000;
    for (int i = 0; i < n; ++i) {
        const position a{gen.uniform(0.0, 2000.0), gen.uniform(0.0, 2000.0)};
        const position b{gen.uniform(0.0, 2000.0), gen.uniform(0.0, 2000.0)};
        const double s = field.shadow_db(a, b);
        sum += s;
        sum2 += s * s;
    }
    const double mean = sum / n;
    const double sd = std::sqrt(sum2 / n - mean * mean);
    EXPECT_NEAR(mean, 0.0, 0.5);
    EXPECT_NEAR(sd, sigma, 1.0);
}

TEST(WidebandFading, DiversityCollapsesVariance) {
    // The appendix's claim: wideband averaging reduces Rayleigh fading to
    // "the equivalent of a few dB".
    csense::stats::rng gen(31);
    wideband_fading narrow(1);
    wideband_fading wide(48);
    const double sigma_narrow = narrow.effective_sigma_db(gen, 20000);
    const double sigma_wide = wide.effective_sigma_db(gen, 20000);
    EXPECT_GT(sigma_narrow, 4.0);   // raw Rayleigh: ~5.6 dB
    EXPECT_LT(sigma_wide, 1.2);     // 48-subcarrier OFDM: ~0.6 dB
    EXPECT_LT(sigma_wide, sigma_narrow / 4.0);
}

TEST(WidebandFading, UnitMeanPower) {
    csense::stats::rng gen(33);
    wideband_fading fading(48);
    double sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) sum += fading.sample_power(gen);
    EXPECT_NEAR(sum / n, 1.0, 0.01);
}

TEST(KnifeEdge, GrazingIncidenceIsSixDb) {
    // v = 0 (edge exactly on the line of sight) gives ~6 dB loss.
    EXPECT_NEAR(knife_edge_loss_db(0.0), 6.0, 0.1);
}

TEST(KnifeEdge, ClearPathNoLoss) {
    EXPECT_DOUBLE_EQ(knife_edge_loss_db(-1.0), 0.0);
}

TEST(KnifeEdge, ThesisBarrierExample) {
    // §3.4: "Using the knife-edge approximation and a 5-meter distance to
    // the barrier, the diffraction loss at 2.4 GHz would be around 30 dB."
    // A strongly obstructing barrier (several meters above the path) at
    // 5 m from each endpoint lands near 30 dB.
    const double loss = knife_edge_loss_db(3.0, 5.0, 5.0, 2.4e9);
    EXPECT_NEAR(loss, 30.0, 3.0);
}

TEST(KnifeEdge, LossGrowsWithObstruction) {
    double prev = 0.0;
    for (double h = 0.0; h <= 5.0; h += 0.5) {
        const double loss = knife_edge_loss_db(h, 5.0, 5.0, 2.4e9);
        EXPECT_GE(loss, prev);
        prev = loss;
    }
}

TEST(Walls, ThesisQuotedMagnitudes) {
    // "typical attenuation through an interior wall is less than 10 dB";
    // "typical reflection losses are less than 10 dB".
    EXPECT_LT(wall_attenuation_db(wall_material::interior_wall), 10.0);
    EXPECT_LT(typical_reflection_loss_db(), 10.0);
    EXPECT_GT(wall_attenuation_db(wall_material::metal),
              wall_attenuation_db(wall_material::concrete));
    EXPECT_GT(wall_attenuation_db(wall_material::concrete),
              wall_attenuation_db(wall_material::drywall));
}

TEST(CombinePaths, StrongestPathDominates) {
    const double losses[] = {30.0, 60.0, 90.0};
    const double combined = combine_paths_db(losses, 3);
    EXPECT_LT(combined, 30.0);          // adding paths only helps
    EXPECT_NEAR(combined, 30.0, 0.01);  // but weak paths barely matter
}

TEST(CombinePaths, EqualPathsGainThreeDb) {
    const double losses[] = {40.0, 40.0};
    EXPECT_NEAR(combine_paths_db(losses, 2), 40.0 - 3.0103, 0.01);
}

TEST(CombinePaths, RejectsEmpty) {
    EXPECT_THROW(combine_paths_db(nullptr, 0), std::invalid_argument);
}

TEST(ChannelModel, LinkBudgetComposition) {
    auto loss = std::make_shared<power_law_path_loss>(3.0, 40.0);
    auto shadow = std::make_shared<no_shadowing>();
    channel_model model(loss, shadow, radio_parameters{15.0, -95.0});
    EXPECT_NEAR(model.median_rx_power_dbm(10.0), 15.0 - 70.0, 1e-12);
    EXPECT_NEAR(model.snr_db(1, 2, 10.0), 15.0 - 70.0 + 95.0, 1e-12);
    EXPECT_NEAR(model.link_gain_db(1, 2, 10.0), -70.0, 1e-12);
}

TEST(ChannelModel, ShadowAddsToBudget) {
    auto loss = std::make_shared<power_law_path_loss>(3.0, 40.0);
    auto shadow = std::make_shared<iid_shadowing>(8.0, 3);
    channel_model model(loss, shadow, radio_parameters{});
    const double expected_shadow = shadow->shadow_db(1, 2);
    EXPECT_NEAR(model.rx_power_dbm(1, 2, 10.0) -
                    model.median_rx_power_dbm(10.0),
                expected_shadow, 1e-12);
}

TEST(ChannelModel, FadingDisabledIsZero) {
    auto loss = std::make_shared<power_law_path_loss>(3.0, 40.0);
    auto shadow = std::make_shared<no_shadowing>();
    channel_model model(loss, shadow, radio_parameters{});
    csense::stats::rng gen(5);
    EXPECT_DOUBLE_EQ(model.sample_fading_db(gen), 0.0);
    model.enable_fading(48);
    double sum = 0.0;
    for (int i = 0; i < 1000; ++i) sum += model.sample_fading_db(gen);
    EXPECT_NE(sum, 0.0);
}

TEST(ChannelModel, RejectsNullComponents) {
    auto loss = std::make_shared<power_law_path_loss>(3.0, 40.0);
    EXPECT_THROW(channel_model(nullptr, std::make_shared<no_shadowing>(),
                               radio_parameters{}),
                 std::invalid_argument);
    EXPECT_THROW(channel_model(loss, nullptr, radio_parameters{}),
                 std::invalid_argument);
}

}  // namespace
