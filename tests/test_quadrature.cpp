// Quadrature correctness: Gauss-Legendre polynomial exactness,
// Gauss-Hermite normal moments, adaptive Simpson on known integrals, and
// the disc-average operator the capacity model is built on.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "src/stats/quadrature.hpp"

namespace {

using namespace csense::stats;

class GaussLegendreOrder : public ::testing::TestWithParam<int> {};

TEST_P(GaussLegendreOrder, ExactForPolynomials) {
    const int n = GetParam();
    // Exact for degree <= 2n - 1; check x^(2n-1) and x^(2n-2) on [0, 1].
    const int degree = 2 * n - 1;
    const double exact_odd = 1.0 / (degree + 1.0);
    const double value_odd = integrate(
        [&](double x) { return std::pow(x, degree); }, 0.0, 1.0, n);
    EXPECT_NEAR(value_odd, exact_odd, 1e-12) << "n = " << n;
    const double exact_even = 1.0 / degree;
    const double value_even = integrate(
        [&](double x) { return std::pow(x, degree - 1); }, 0.0, 1.0, n);
    EXPECT_NEAR(value_even, exact_even, 1e-12) << "n = " << n;
}

INSTANTIATE_TEST_SUITE_P(Orders, GaussLegendreOrder,
                         ::testing::Values(2, 4, 8, 16, 32, 64));

TEST(GaussLegendre, WeightsSumToTwo) {
    for (int n : {1, 3, 7, 48}) {
        const auto& rule = gauss_legendre(n);
        double sum = 0.0;
        for (double w : rule.weights) sum += w;
        EXPECT_NEAR(sum, 2.0, 1e-12) << "n = " << n;
    }
}

TEST(GaussLegendre, NodesSymmetricAndSorted) {
    const auto& rule = gauss_legendre(16);
    for (int i = 0; i < 8; ++i) {
        EXPECT_NEAR(rule.nodes[i], -rule.nodes[15 - i], 1e-13);
    }
    for (int i = 1; i < 16; ++i) {
        EXPECT_GT(rule.nodes[i], rule.nodes[i - 1]);
    }
}

TEST(GaussLegendre, RejectsBadOrder) {
    EXPECT_THROW(gauss_legendre(0), std::invalid_argument);
}

TEST(Integrate, SinOverHalfPeriod) {
    const double value = integrate([](double x) { return std::sin(x); }, 0.0,
                                   std::numbers::pi, 32);
    EXPECT_NEAR(value, 2.0, 1e-12);
}

TEST(GaussHermite, NormalMoments) {
    // E[Z^k] for Z ~ N(0,1): 1, 0, 1, 0, 3, 0, 15.
    const double m0 = normal_expectation([](double) { return 1.0; });
    const double m1 = normal_expectation([](double z) { return z; });
    const double m2 = normal_expectation([](double z) { return z * z; });
    const double m4 = normal_expectation([](double z) { return z * z * z * z; });
    const double m6 = normal_expectation(
        [](double z) { return z * z * z * z * z * z; });
    EXPECT_NEAR(m0, 1.0, 1e-12);
    EXPECT_NEAR(m1, 0.0, 1e-12);
    EXPECT_NEAR(m2, 1.0, 1e-10);
    EXPECT_NEAR(m4, 3.0, 1e-9);
    EXPECT_NEAR(m6, 15.0, 1e-8);
}

TEST(GaussHermite, LognormalMean) {
    // E[e^(sZ)] = e^(s^2/2).
    for (double s : {0.5, 1.0, 1.8}) {
        const double value =
            normal_expectation([&](double z) { return std::exp(s * z); }, 32);
        EXPECT_NEAR(value, std::exp(0.5 * s * s), 1e-6) << "s = " << s;
    }
}

TEST(AdaptiveSimpson, SmoothIntegrals) {
    EXPECT_NEAR(integrate_adaptive([](double x) { return std::exp(x); }, 0.0,
                                   1.0, 1e-10),
                std::numbers::e - 1.0, 1e-9);
    EXPECT_NEAR(integrate_adaptive([](double x) { return 1.0 / (1.0 + x * x); },
                                   0.0, 1.0, 1e-10),
                std::numbers::pi / 4.0, 1e-9);
}

TEST(AdaptiveSimpson, HandlesSharpPeak) {
    // Narrow Gaussian bump integrates to ~sqrt(pi) * width. The interval
    // is chosen so the initial refinement brackets the peak; a coarse
    // first pass over a much wider interval can miss a feature entirely,
    // which is inherent to adaptive Simpson.
    const double w = 0.01;
    const double value = integrate_adaptive(
        [&](double x) { return std::exp(-(x - 0.3) * (x - 0.3) / (w * w)); },
        0.2, 0.4, 1e-12);
    EXPECT_NEAR(value, std::sqrt(std::numbers::pi) * w, 1e-8);
}

TEST(DiscAverage, ConstantIsItself) {
    EXPECT_NEAR(disc_average([](double, double) { return 3.5; }, 10.0), 3.5,
                1e-12);
}

TEST(DiscAverage, RadialSquare) {
    // Average of r^2 over a disc of radius R is R^2 / 2.
    const double radius = 7.0;
    EXPECT_NEAR(disc_average([](double r, double) { return r * r; }, radius),
                radius * radius / 2.0, 1e-10);
}

TEST(DiscAverage, OddAngularTermsVanish) {
    EXPECT_NEAR(disc_average([](double r, double t) { return r * std::cos(t); },
                             5.0),
                0.0, 1e-12);
    EXPECT_NEAR(disc_average([](double r, double t) { return r * std::sin(t); },
                             5.0),
                0.0, 1e-12);
}

TEST(DiscAverage, AngularHarmonicsExact) {
    // cos^2 averages to 1/2 regardless of radius.
    EXPECT_NEAR(disc_average(
                    [](double, double t) { return std::cos(t) * std::cos(t); },
                    3.0),
                0.5, 1e-12);
}

TEST(DiscAverage, RejectsBadRadius) {
    EXPECT_THROW(disc_average([](double, double) { return 1.0; }, 0.0),
                 std::invalid_argument);
    EXPECT_THROW(disc_average([](double, double) { return 1.0; }, -2.0),
                 std::invalid_argument);
}

}  // namespace
