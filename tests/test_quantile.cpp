// The deterministic streaming quantile accumulator: bin resolution,
// quantile/mean/jitter semantics, and exact mergeability (the property
// the campaign layer's shard-order-invariant aggregation relies on).
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "src/stats/quantile.hpp"
#include "src/stats/rng.hpp"

namespace {

using csense::stats::rng;
using csense::stats::streaming_quantiles;

TEST(Quantile, EmptyReportsZeros) {
    streaming_quantiles q;
    EXPECT_EQ(q.count(), 0u);
    EXPECT_EQ(q.quantile(0.5), 0.0);
    EXPECT_EQ(q.mean(), 0.0);
    EXPECT_EQ(q.jitter(), 0.0);
    EXPECT_EQ(q.min(), 0.0);
    EXPECT_EQ(q.max(), 0.0);
}

TEST(Quantile, SingleSample) {
    streaming_quantiles q;
    q.add(250.0);
    EXPECT_EQ(q.count(), 1u);
    EXPECT_EQ(q.mean(), 250.0);
    EXPECT_EQ(q.min(), 250.0);
    EXPECT_EQ(q.max(), 250.0);
    EXPECT_EQ(q.jitter(), 0.0);  // needs two samples
    // The estimate is the bin's geometric midpoint: within the ~5% bin
    // width of the true value.
    EXPECT_NEAR(q.quantile(0.5), 250.0, 250.0 * 0.05);
}

TEST(Quantile, QuantilesTrackTrueSampleQuantilesWithinBinResolution) {
    streaming_quantiles q;
    rng gen(42);
    std::vector<double> samples;
    for (int i = 0; i < 20000; ++i) {
        const double x = gen.exponential(1.0 / 800.0);  // mean 800 us
        samples.push_back(x);
        q.add(x);
    }
    std::sort(samples.begin(), samples.end());
    for (const double p : {0.1, 0.5, 0.9, 0.99}) {
        const auto rank = static_cast<std::size_t>(p * samples.size());
        const double truth = samples[std::min(rank, samples.size() - 1)];
        EXPECT_NEAR(q.quantile(p), truth, truth * 0.06)
            << "quantile " << p;
    }
    EXPECT_NEAR(q.mean(), 800.0, 40.0);
}

TEST(Quantile, ExtremesClampIntoEdgeBins) {
    streaming_quantiles q;
    q.add(0.0);     // below the lowest edge
    q.add(-5.0);    // nonsense input: still clamps, never UB
    q.add(1e12);    // beyond the top edge
    EXPECT_EQ(q.count(), 3u);
    EXPECT_GT(q.quantile(1.0), 1e8);  // top bin midpoint
    EXPECT_LT(q.quantile(0.0), 0.1);  // bottom bin midpoint
}

TEST(Quantile, JitterIsMeanAbsConsecutiveDelta) {
    streaming_quantiles q;
    for (const double x : {100.0, 200.0, 100.0, 200.0}) q.add(x);
    EXPECT_DOUBLE_EQ(q.jitter(), 100.0);
    EXPECT_DOUBLE_EQ(q.mean(), 150.0);
}

TEST(Quantile, MergeMatchesSingleStreamExactly) {
    // Counts are integers and bins are fixed, so a merge in index order
    // must reproduce the single-stream quantiles bit-for-bit - this is
    // the thread-count-invariance property campaigns lean on.
    streaming_quantiles whole, left, right;
    rng gen(7);
    for (int i = 0; i < 5000; ++i) {
        const double x = gen.exponential(1.0 / 300.0);
        whole.add(x);
        (i < 2500 ? left : right).add(x);
    }
    streaming_quantiles merged;
    merged.merge(left);
    merged.merge(right);
    EXPECT_EQ(merged.count(), whole.count());
    for (const double p : {0.01, 0.25, 0.5, 0.75, 0.99}) {
        EXPECT_EQ(merged.quantile(p), whole.quantile(p)) << "quantile " << p;
    }
    EXPECT_EQ(merged.min(), whole.min());
    EXPECT_EQ(merged.max(), whole.max());
    EXPECT_DOUBLE_EQ(merged.mean(), whole.mean());
    // Jitter: the merge drops exactly the one cross-boundary delta.
    EXPECT_NEAR(merged.jitter(), whole.jitter(), whole.jitter() * 0.01);
    // Merging an empty accumulator changes nothing.
    streaming_quantiles empty;
    merged.merge(empty);
    EXPECT_EQ(merged.quantile(0.5), whole.quantile(0.5));
}

TEST(Quantile, MonotoneInQ) {
    streaming_quantiles q;
    rng gen(11);
    for (int i = 0; i < 1000; ++i) q.add(gen.uniform(10.0, 1e5));
    double prev = 0.0;
    for (double p = 0.0; p <= 1.0; p += 0.05) {
        const double v = q.quantile(p);
        EXPECT_GE(v, prev);
        prev = v;
    }
}

}  // namespace
