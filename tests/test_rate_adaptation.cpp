// Rate adaptation algorithms: ARF counters, SampleRate's expected-time
// policy, and the thesis' best-fixed-rate oracle.
#include <gtest/gtest.h>

#include <cmath>

#include "src/capacity/rate_adaptation.hpp"

namespace {

using namespace csense::capacity;

TEST(FixedRate, NeverMoves) {
    fixed_rate fixed(rate_by_mbps(18.0));
    for (int i = 0; i < 10; ++i) {
        EXPECT_DOUBLE_EQ(fixed.next_rate().mbps, 18.0);
        fixed.report(fixed.next_rate(), i % 2 == 0, 100.0);
    }
}

TEST(Arf, ClimbsOnSuccess) {
    arf adapt(ofdm_rates(), 3, 2);
    EXPECT_DOUBLE_EQ(adapt.next_rate().mbps, 6.0);
    for (int i = 0; i < 3; ++i) adapt.report(adapt.next_rate(), true, 100.0);
    EXPECT_DOUBLE_EQ(adapt.next_rate().mbps, 9.0);
    for (int i = 0; i < 3 * 6; ++i) adapt.report(adapt.next_rate(), true, 100.0);
    EXPECT_DOUBLE_EQ(adapt.next_rate().mbps, 54.0);
    // Saturates at the top.
    for (int i = 0; i < 10; ++i) adapt.report(adapt.next_rate(), true, 100.0);
    EXPECT_DOUBLE_EQ(adapt.next_rate().mbps, 54.0);
}

TEST(Arf, FallsOnFailure) {
    arf adapt(ofdm_rates(), 3, 2);
    for (int i = 0; i < 6; ++i) adapt.report(adapt.next_rate(), true, 100.0);
    EXPECT_DOUBLE_EQ(adapt.next_rate().mbps, 12.0);
    adapt.report(adapt.next_rate(), false, 100.0);
    adapt.report(adapt.next_rate(), false, 100.0);
    EXPECT_DOUBLE_EQ(adapt.next_rate().mbps, 9.0);
    // Never below the floor.
    for (int i = 0; i < 20; ++i) adapt.report(adapt.next_rate(), false, 100.0);
    EXPECT_DOUBLE_EQ(adapt.next_rate().mbps, 6.0);
}

TEST(Arf, MixedTrafficResetsCounters) {
    arf adapt(ofdm_rates(), 3, 2);
    // success, success, fail, ... never 3 in a row: stays at the bottom.
    for (int i = 0; i < 30; ++i) {
        adapt.report(adapt.next_rate(), (i % 3) != 2, 100.0);
    }
    EXPECT_DOUBLE_EQ(adapt.next_rate().mbps, 6.0);
}

TEST(Arf, RejectsBadConfig) {
    EXPECT_THROW(arf({}, 3, 2), std::invalid_argument);
    EXPECT_THROW(arf(ofdm_rates(), 0, 2), std::invalid_argument);
}

TEST(SampleRate, ConvergesToBestRateUnderLossProfile) {
    // Synthetic link: delivery 100% up to 18 Mb/s, 60% at 24, 0% above.
    sample_rate adapt(ofdm_rates(), 1400, 7);
    csense::stats::rng gen(99);
    for (int i = 0; i < 4000; ++i) {
        const auto& rate = adapt.next_rate();
        double delivery = 1.0;
        if (rate.mbps == 24.0) delivery = 0.6;
        if (rate.mbps > 24.0) delivery = 0.0;
        adapt.report(rate, gen.uniform() < delivery,
                     frame_airtime_us(rate, 1400));
    }
    // Expected time: 18M lossless = 647 us; 24M at 60% = 813 us; best is 18.
    int hits_18 = 0;
    for (int i = 0; i < 200; ++i) {
        if (adapt.next_rate().mbps == 18.0) ++hits_18;
    }
    EXPECT_GT(hits_18, 150);  // mostly 18, some probes
}

TEST(SampleRate, PrefersFasterWhenLossFree) {
    sample_rate adapt(ofdm_rates(), 1400, 3);
    for (int i = 0; i < 2000; ++i) {
        const auto& rate = adapt.next_rate();
        adapt.report(rate, true, frame_airtime_us(rate, 1400));
    }
    int hits_54 = 0;
    for (int i = 0; i < 200; ++i) {
        if (adapt.next_rate().mbps == 54.0) ++hits_54;
    }
    EXPECT_GT(hits_54, 150);
}

TEST(SampleRate, ExpectedTimeInfinityWhenDead) {
    sample_rate adapt(ofdm_rates(), 1400, 5);
    for (int i = 0; i < 50; ++i) {
        adapt.report(ofdm_rates()[7], false, 100.0);
    }
    EXPECT_TRUE(std::isinf(adapt.expected_time_us(7)));
}

TEST(SampleRate, ReportsUnknownRateRejected) {
    sample_rate adapt(thesis_sweep_rates(), 1400, 5);
    EXPECT_THROW(adapt.report(rate_by_mbps(54.0), true, 100.0),
                 std::invalid_argument);
}

TEST(Oracle, PicksBaseRateAtLowSnr) {
    const logistic_per_model model;
    const auto& best =
        best_fixed_rate_oracle(thesis_sweep_rates(), model, 3.5, 1400);
    EXPECT_DOUBLE_EQ(best.mbps, 6.0);
}

TEST(Oracle, PicksTopRateAtHighSnr) {
    const logistic_per_model model;
    const auto& best =
        best_fixed_rate_oracle(thesis_sweep_rates(), model, 35.0, 1400);
    EXPECT_DOUBLE_EQ(best.mbps, 24.0);
    const auto& full =
        best_fixed_rate_oracle(ofdm_rates(), model, 35.0, 1400);
    EXPECT_DOUBLE_EQ(full.mbps, 54.0);
}

TEST(Oracle, MonotoneInSnrAndGoodputOptimal) {
    const logistic_per_model model(1.0);
    double prev_mbps = 0.0;
    for (double snr = 0.0; snr <= 30.0; snr += 0.5) {
        const auto& best = best_fixed_rate_oracle(ofdm_rates(), model, snr,
                                                  1400);
        EXPECT_GE(best.mbps, prev_mbps) << "snr = " << snr;
        prev_mbps = best.mbps;
        // The oracle's pick never has lower goodput than the naive
        // SNR-threshold table's pick.
        const auto& naive = best_rate_for_snr(snr);
        const double oracle_goodput =
            saturated_broadcast_pps(best, 1400) *
            model.delivery_rate(best, snr, 1400);
        const double naive_goodput =
            saturated_broadcast_pps(naive, 1400) *
            model.delivery_rate(naive, snr, 1400);
        EXPECT_GE(oracle_goodput, naive_goodput - 1e-9) << "snr = " << snr;
    }
}

TEST(Oracle, RejectsEmptyTable) {
    const logistic_per_model model;
    EXPECT_THROW(best_fixed_rate_oracle({}, model, 10.0, 1400),
                 std::invalid_argument);
}

}  // namespace
