// Reporting utilities: tables, CSV escaping, and ASCII charts.
#include <gtest/gtest.h>

#include "src/report/ascii_plot.hpp"
#include "src/report/csv.hpp"
#include "src/report/table.hpp"

namespace {

using namespace csense::report;

TEST(Table, RendersAlignedColumns) {
    text_table table({"Rmax", "D", "eff"});
    table.add_row({"20", "55", "88%"});
    table.add_row({"120", "120", "92%"});
    const std::string out = table.render();
    EXPECT_NE(out.find("Rmax"), std::string::npos);
    EXPECT_NE(out.find("88%"), std::string::npos);
    EXPECT_NE(out.find("---"), std::string::npos);
    EXPECT_EQ(table.rows(), 2u);
}

TEST(Table, RejectsBadRows) {
    text_table table({"a", "b"});
    EXPECT_THROW(table.add_row({"only-one"}), std::invalid_argument);
    EXPECT_THROW(text_table({}), std::invalid_argument);
}

TEST(Table, Formatting) {
    EXPECT_EQ(fmt(3.14159, 2), "3.14");
    EXPECT_EQ(fmt(2.0, 0), "2");
    EXPECT_EQ(fmt_percent(0.876, 0), "88%");
    EXPECT_EQ(fmt_percent(0.876, 1), "87.6%");
}

TEST(Csv, EscapesSpecialCharacters) {
    EXPECT_EQ(csv_escape("plain"), "plain");
    EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
    EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
    EXPECT_EQ(csv_escape("line\nbreak"), "\"line\nbreak\"");
}

TEST(Csv, LineAndDocument) {
    EXPECT_EQ(csv_line({"a", "b,c", "d"}), "a,\"b,c\",d");
    const auto doc = csv_document({{"h1", "h2"}, {"1", "2"}});
    EXPECT_EQ(doc, "h1,h2\n1,2\n");
}

TEST(Chart, RendersSeriesMarkersAndLegend) {
    series s1{"mux", {0, 1, 2, 3}, {1, 1, 1, 1}, 'm'};
    series s2{"conc", {0, 1, 2, 3}, {0, 1, 2, 3}, 'c'};
    plot_options opts;
    opts.width = 40;
    opts.height = 10;
    const std::string out = render_chart({s1, s2}, opts);
    EXPECT_NE(out.find('m'), std::string::npos);
    EXPECT_NE(out.find('c'), std::string::npos);
    EXPECT_NE(out.find("legend:"), std::string::npos);
    EXPECT_NE(out.find("mux"), std::string::npos);
}

TEST(Chart, RejectsBadInput) {
    EXPECT_THROW(render_chart({}, plot_options{}), std::invalid_argument);
    series bad{"x", {1, 2}, {1}, '*'};
    EXPECT_THROW(render_chart({bad}, plot_options{}), std::invalid_argument);
}

TEST(Chart, HandlesSinglePoint) {
    series s{"dot", {5.0}, {7.0}, 'o'};
    plot_options opts;
    opts.y_from_zero = false;
    const std::string out = render_chart({s}, opts);
    EXPECT_NE(out.find('o'), std::string::npos);
}

TEST(Heatmap, DimensionsAndRamp) {
    std::vector<double> values = {0.0, 0.5, 1.0, 0.25, 0.75, 0.9};
    const std::string out = render_heatmap(values, 2, 3, "capacity");
    // Two rows of 3 plus newlines plus legend line.
    const auto first_newline = out.find('\n');
    EXPECT_EQ(first_newline, 3u);
    EXPECT_NE(out.find("capacity"), std::string::npos);
    EXPECT_THROW(render_heatmap(values, 2, 2, ""), std::invalid_argument);
}

TEST(CategoryMap, PaletteLookup) {
    std::vector<int> cells = {0, 1, 2, -1};
    const std::string out = render_category_map(cells, 2, 2, ".x#");
    EXPECT_EQ(out, ".x\n# \n");
    EXPECT_THROW(render_category_map(cells, 3, 2, ".x#"),
                 std::invalid_argument);
}

}  // namespace
