// Reporting utilities: tables, CSV escaping, ASCII charts, and the JSON
// parse/dump round trip the checkpoint machinery splices records with.
#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "src/report/ascii_plot.hpp"
#include "src/report/csv.hpp"
#include "src/report/json.hpp"
#include "src/report/table.hpp"

namespace {

using namespace csense::report;

TEST(Json, ParsesScalarsAndStructure) {
    const auto doc = json_value::parse(
        "{\"a\": 1, \"b\": [true, false, null, \"s\"], \"c\": {\"d\": "
        "-2.5}}");
    ASSERT_TRUE(doc.has_value());
    ASSERT_TRUE(doc->is_object());
    EXPECT_EQ(doc->find("a")->to_int64(), 1);
    const auto* b = doc->find("b");
    ASSERT_NE(b, nullptr);
    ASSERT_TRUE(b->is_array());
    ASSERT_EQ(b->size(), 4u);
    EXPECT_TRUE(b->at(2).is_null());
    EXPECT_EQ(b->at(3).to_string_value(), "s");
    EXPECT_DOUBLE_EQ(doc->find("c")->find("d")->to_double(), -2.5);
}

TEST(Json, RejectsMalformedDocuments) {
    for (const char* bad :
         {"", "{", "[1,]", "{\"k\" 1}", "tru", "1 2", "\"unterminated",
          "[1] trailing", "nan", "--1", "+1"}) {
        std::string error;
        EXPECT_FALSE(json_value::parse(bad, &error).has_value())
            << "accepted malformed input: " << bad;
        EXPECT_FALSE(error.empty()) << bad;
    }
}

TEST(Json, ParseDumpRoundTripIsByteStable) {
    // The checkpoint contract: for any document this class emits,
    // dump(parse(dump(v, 0)), 2) == dump(v, 2) byte-for-byte. Cover the
    // tricky number kinds: integers, doubles whose shortest form looks
    // integral (1e22), negative zero, uint64 beyond int64, escapes.
    json_value doc = json_value::object();
    doc["int"] = std::int64_t{-42};
    doc["uint_big"] = std::uint64_t{18446744073709551615ull};
    doc["dbl"] = 0.1;
    doc["dbl_integral_form"] = 1e22;
    doc["neg_zero"] = -0.0;
    doc["tiny"] = 5e-324;
    doc["nan_becomes_null"] = std::nan("");
    doc["str"] = "quote \" backslash \\ newline \n tab \t";
    json_value arr = json_value::array();
    arr.push_back(1);
    arr.push_back(2.5);
    arr.push_back(true);
    arr.push_back(json_value());
    doc["arr"] = std::move(arr);
    json_value nested = json_value::object();
    nested["empty_obj"] = json_value::object();
    nested["empty_arr"] = json_value::array();
    doc["nested"] = std::move(nested);

    for (const int indent : {0, 2}) {
        const std::string bytes = doc.dump(indent);
        const auto reparsed = json_value::parse(bytes);
        ASSERT_TRUE(reparsed.has_value()) << bytes;
        EXPECT_EQ(reparsed->dump(indent), bytes)
            << "parse/dump round trip changed bytes at indent " << indent;
        // The cross-indent contract the checkpoint splice relies on:
        // a record stored compact must re-emit identically when the
        // resumed document pretty-prints it.
        const auto compact = json_value::parse(doc.dump(0));
        ASSERT_TRUE(compact.has_value());
        EXPECT_EQ(compact->dump(2), doc.dump(2));
    }
}

TEST(Json, ParseHandlesUnicodeEscapes) {
    const auto doc = json_value::parse("\"a\\u00e9\\u4e2d\\u0041\"");
    ASSERT_TRUE(doc.has_value());
    EXPECT_EQ(doc->to_string_value(), "a\xc3\xa9\xe4\xb8\xad""A");
}

TEST(Table, RendersAlignedColumns) {
    text_table table({"Rmax", "D", "eff"});
    table.add_row({"20", "55", "88%"});
    table.add_row({"120", "120", "92%"});
    const std::string out = table.render();
    EXPECT_NE(out.find("Rmax"), std::string::npos);
    EXPECT_NE(out.find("88%"), std::string::npos);
    EXPECT_NE(out.find("---"), std::string::npos);
    EXPECT_EQ(table.rows(), 2u);
}

TEST(Table, RejectsBadRows) {
    text_table table({"a", "b"});
    EXPECT_THROW(table.add_row({"only-one"}), std::invalid_argument);
    EXPECT_THROW(text_table({}), std::invalid_argument);
}

TEST(Table, Formatting) {
    EXPECT_EQ(fmt(3.14159, 2), "3.14");
    EXPECT_EQ(fmt(2.0, 0), "2");
    EXPECT_EQ(fmt_percent(0.876, 0), "88%");
    EXPECT_EQ(fmt_percent(0.876, 1), "87.6%");
}

TEST(Csv, EscapesSpecialCharacters) {
    EXPECT_EQ(csv_escape("plain"), "plain");
    EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
    EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
    EXPECT_EQ(csv_escape("line\nbreak"), "\"line\nbreak\"");
}

TEST(Csv, LineAndDocument) {
    EXPECT_EQ(csv_line({"a", "b,c", "d"}), "a,\"b,c\",d");
    const auto doc = csv_document({{"h1", "h2"}, {"1", "2"}});
    EXPECT_EQ(doc, "h1,h2\n1,2\n");
}

TEST(Chart, RendersSeriesMarkersAndLegend) {
    series s1{"mux", {0, 1, 2, 3}, {1, 1, 1, 1}, 'm'};
    series s2{"conc", {0, 1, 2, 3}, {0, 1, 2, 3}, 'c'};
    plot_options opts;
    opts.width = 40;
    opts.height = 10;
    const std::string out = render_chart({s1, s2}, opts);
    EXPECT_NE(out.find('m'), std::string::npos);
    EXPECT_NE(out.find('c'), std::string::npos);
    EXPECT_NE(out.find("legend:"), std::string::npos);
    EXPECT_NE(out.find("mux"), std::string::npos);
}

TEST(Chart, RejectsBadInput) {
    EXPECT_THROW(render_chart({}, plot_options{}), std::invalid_argument);
    series bad{"x", {1, 2}, {1}, '*'};
    EXPECT_THROW(render_chart({bad}, plot_options{}), std::invalid_argument);
}

TEST(Chart, HandlesSinglePoint) {
    series s{"dot", {5.0}, {7.0}, 'o'};
    plot_options opts;
    opts.y_from_zero = false;
    const std::string out = render_chart({s}, opts);
    EXPECT_NE(out.find('o'), std::string::npos);
}

TEST(Heatmap, DimensionsAndRamp) {
    std::vector<double> values = {0.0, 0.5, 1.0, 0.25, 0.75, 0.9};
    const std::string out = render_heatmap(values, 2, 3, "capacity");
    // Two rows of 3 plus newlines plus legend line.
    const auto first_newline = out.find('\n');
    EXPECT_EQ(first_newline, 3u);
    EXPECT_NE(out.find("capacity"), std::string::npos);
    EXPECT_THROW(render_heatmap(values, 2, 2, ""), std::invalid_argument);
}

TEST(CategoryMap, PaletteLookup) {
    std::vector<int> cells = {0, 1, 2, -1};
    const std::string out = render_category_map(cells, 2, 2, ".x#");
    EXPECT_EQ(out, ".x\n# \n");
    EXPECT_THROW(render_category_map(cells, 3, 2, ".x#"),
                 std::invalid_argument);
}

}  // namespace
