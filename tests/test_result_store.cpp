// The keyed result store (src/store/result_store.hpp) is the layer the
// checkpoint/resume machinery trusts with campaign state, so every
// corruption mode it claims to survive is injected here: truncation,
// bit flips, torn writes (temp file written, rename never happened),
// header damage and schema drift. The contract under fault is always
// the same — detect, quarantine (never delete, never trust), report a
// miss so the caller recomputes; never crash, never silently merge
// corrupt bytes.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/sim/campaign.hpp"
#include "src/store/result_store.hpp"

namespace {

namespace fs = std::filesystem;
using csense::store::fs_hooks;
using csense::store::result_store;

fs::path fresh_root(const char* name) {
    const fs::path root = fs::path(::testing::TempDir()) / name;
    fs::remove_all(root);
    return root;
}

std::string read_file(const fs::path& path) {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

std::size_t quarantine_count(const result_store& store) {
    std::size_t n = 0;
    if (fs::exists(store.quarantine_dir())) {
        for ([[maybe_unused]] const auto& entry :
             fs::directory_iterator(store.quarantine_dir())) {
            ++n;
        }
    }
    return n;
}

TEST(ResultStore, RoundTripsPayloads) {
    result_store store(fresh_root("store_rt"), "test/1");
    EXPECT_EQ(store.load("missing"), std::nullopt);
    ASSERT_TRUE(store.put("alpha", "payload one"));
    ASSERT_TRUE(store.put("beta", "payload\nwith\nnewlines\n"));
    EXPECT_EQ(store.load("alpha"), "payload one");
    EXPECT_EQ(store.load("beta"), "payload\nwith\nnewlines\n");
    // Overwrite is in place, not append.
    ASSERT_TRUE(store.put("alpha", "payload two"));
    EXPECT_EQ(store.load("alpha"), "payload two");
    const auto stats = store.stats();
    EXPECT_EQ(stats.writes, 3u);
    EXPECT_EQ(stats.hits, 3u);
    EXPECT_EQ(stats.misses, 1u);
    EXPECT_EQ(stats.quarantined, 0u);
}

TEST(ResultStore, EmptyPayloadAndBinaryBytesSurvive) {
    result_store store(fresh_root("store_bin"), "test/1");
    ASSERT_TRUE(store.put("empty", ""));
    EXPECT_EQ(store.load("empty"), "");
    std::string blob;
    for (int i = 0; i < 256; ++i) blob += static_cast<char>(i);
    ASSERT_TRUE(store.put("blob", blob));
    EXPECT_EQ(store.load("blob"), blob);
}

TEST(ResultStore, DistinctKeysMapToDistinctFiles) {
    result_store store(fresh_root("store_keys"), "test/1");
    // Keys that sanitize to the same prefix must still be separated by
    // the key-hash suffix in the filename.
    EXPECT_NE(store.path_for("run/a"), store.path_for("run?a"));
    ASSERT_TRUE(store.put("run/a", "A"));
    ASSERT_TRUE(store.put("run?a", "B"));
    EXPECT_EQ(store.load("run/a"), "A");
    EXPECT_EQ(store.load("run?a"), "B");
}

TEST(ResultStore, RejectsUnusableKeys) {
    result_store store(fresh_root("store_badkey"), "test/1");
    EXPECT_THROW(store.put("", "x"), std::invalid_argument);
    EXPECT_THROW(store.put("a\nb", "x"), std::invalid_argument);
}

TEST(ResultStore, TruncatedRecordQuarantinesAndRecomputes) {
    result_store store(fresh_root("store_trunc"), "test/1");
    ASSERT_TRUE(store.put("key", "a fairly long payload, truncated below"));
    const fs::path file = store.path_for("key");
    const std::string bytes = read_file(file);
    // Simulate a crash mid-write of a non-atomic writer / filesystem
    // truncation: drop the tail (including part of the payload).
    std::ofstream(file, std::ios::binary | std::ios::trunc)
        << bytes.substr(0, bytes.size() - 10);
    EXPECT_EQ(store.load("key"), std::nullopt) << "truncated record trusted";
    EXPECT_FALSE(fs::exists(file)) << "corrupt record left in place";
    EXPECT_EQ(quarantine_count(store), 1u);
    EXPECT_EQ(store.stats().quarantined, 1u);
    // The recompute path: a fresh put overwrites cleanly and loads.
    ASSERT_TRUE(store.put("key", "recomputed"));
    EXPECT_EQ(store.load("key"), "recomputed");
}

TEST(ResultStore, BitFlippedPayloadQuarantines) {
    result_store store(fresh_root("store_flip"), "test/1");
    ASSERT_TRUE(store.put("key", "checksummed payload bytes"));
    const fs::path file = store.path_for("key");
    std::string bytes = read_file(file);
    bytes[bytes.size() - 3] ^= 0x20;  // flip one bit inside the payload
    std::ofstream(file, std::ios::binary | std::ios::trunc) << bytes;
    EXPECT_EQ(store.load("key"), std::nullopt)
        << "bit-flipped payload passed the checksum";
    EXPECT_EQ(quarantine_count(store), 1u);
}

TEST(ResultStore, HeaderDamageQuarantines) {
    for (const int damaged_line : {0, 1, 2, 3, 4}) {
        result_store store(fresh_root("store_hdr"), "test/1");
        ASSERT_TRUE(store.put("key", "payload"));
        const fs::path file = store.path_for("key");
        std::string bytes = read_file(file);
        // Corrupt the first byte of header line `damaged_line` (magic,
        // schema, key, payload_bytes, checksum).
        std::size_t pos = 0;
        for (int line = 0; line < damaged_line; ++line) {
            pos = bytes.find('\n', pos) + 1;
        }
        bytes[pos] = '#';
        std::ofstream(file, std::ios::binary | std::ios::trunc) << bytes;
        EXPECT_EQ(store.load("key"), std::nullopt)
            << "damaged header line " << damaged_line << " trusted";
        EXPECT_EQ(quarantine_count(store), 1u)
            << "damaged header line " << damaged_line << " not quarantined";
    }
}

TEST(ResultStore, WrongKeyInRecordQuarantines) {
    // A record renamed onto the wrong filename (operator error, backup
    // restore gone wrong) self-identifies via its embedded key.
    result_store store(fresh_root("store_misplaced"), "test/1");
    ASSERT_TRUE(store.put("original", "payload"));
    fs::rename(store.path_for("original"), store.path_for("other"));
    EXPECT_EQ(store.load("other"), std::nullopt);
    EXPECT_EQ(quarantine_count(store), 1u);
}

TEST(ResultStore, StaleSchemaIsAMissInPlaceNotQuarantine) {
    const fs::path root = fresh_root("store_schema");
    {
        result_store v1(root, "test/1");
        ASSERT_TRUE(v1.put("key", "old-schema payload"));
    }
    result_store v2(root, "test/2");
    EXPECT_EQ(v2.load("key"), std::nullopt)
        << "stale-schema record must read as a miss";
    EXPECT_EQ(quarantine_count(v2), 0u)
        << "stale records are not corrupt; they are overwritten in place";
    EXPECT_TRUE(fs::exists(v2.path_for("key")));
    ASSERT_TRUE(v2.put("key", "new-schema payload"));
    EXPECT_EQ(v2.load("key"), "new-schema payload");
    // The old store would now quarantine the new record, not trust it.
    result_store v1(root, "test/1");
    EXPECT_EQ(v1.load("key"), std::nullopt);
}

TEST(ResultStore, TornWriteLeavesPreviousRecordVisible) {
    // Fault injection: the temp file is written but the process dies
    // before the rename. The reader must still see the previous record
    // (or a clean miss), never a half-written one.
    fs_hooks hooks;
    bool drop_rename = false;
    hooks.rename_file = [&](const fs::path& from, const fs::path& to) {
        if (drop_rename) return false;  // simulated kill before rename
        std::error_code ec;
        fs::rename(from, to, ec);
        return !ec;
    };
    result_store store(fresh_root("store_torn"), "test/1", hooks);
    ASSERT_TRUE(store.put("key", "generation 1"));
    drop_rename = true;
    EXPECT_FALSE(store.put("key", "generation 2"));
    EXPECT_EQ(store.stats().write_failures, 1u);
    EXPECT_EQ(store.load("key"), "generation 1")
        << "torn write must not clobber the previous record";
    drop_rename = false;
    ASSERT_TRUE(store.put("key", "generation 2"));
    EXPECT_EQ(store.load("key"), "generation 2");
}

TEST(ResultStore, ShortWriteFailsPutWithoutCorruptingStore) {
    // Fault injection: the write itself is cut short (disk full, torn
    // page). put must report failure and the key must stay a miss —
    // the half-record never becomes visible under the real filename.
    fs_hooks hooks;
    bool truncate_writes = false;
    hooks.write_file = [&](const fs::path& path, std::string_view data) {
        if (truncate_writes) data = data.substr(0, data.size() / 2);
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        out << data;
        return static_cast<bool>(out);
    };
    result_store store(fresh_root("store_short"), "test/1", hooks);
    truncate_writes = true;
    // The truncated temp file still gets renamed into place by the real
    // rename hook — exactly the torn-page shape load() must catch.
    EXPECT_TRUE(store.put("key", "a payload that will be cut in half"));
    EXPECT_EQ(store.load("key"), std::nullopt)
        << "half-written record trusted";
    EXPECT_EQ(store.stats().quarantined, 1u);
    truncate_writes = false;
    ASSERT_TRUE(store.put("key", "intact"));
    EXPECT_EQ(store.load("key"), "intact");
}

TEST(ResultStore, QuarantineKeepsEveryGeneration) {
    result_store store(fresh_root("store_gen"), "test/1");
    for (int gen = 0; gen < 3; ++gen) {
        ASSERT_TRUE(store.put("key", "payload " + std::to_string(gen)));
        const fs::path file = store.path_for("key");
        std::string bytes = read_file(file);
        bytes[bytes.size() - 1] ^= 1;
        std::ofstream(file, std::ios::binary | std::ios::trunc) << bytes;
        EXPECT_EQ(store.load("key"), std::nullopt);
    }
    EXPECT_EQ(quarantine_count(store), 3u)
        << "quarantine must keep prior generations, not overwrite them";
}

TEST(ResultStore, EraseRemovesTheRecord) {
    result_store store(fresh_root("store_erase"), "test/1");
    ASSERT_TRUE(store.put("key", "payload"));
    store.erase("key");
    EXPECT_EQ(store.load("key"), std::nullopt);
    store.erase("key");  // idempotent
}

TEST(ResultStore, EncodeDecodeDoublesIsExact) {
    const std::vector<double> values = {
        0.0,
        -0.0,
        1.0 / 3.0,
        -123456.789,
        1e-300,
        -1e300,
        5e-324,                                  // min subnormal
        1.7976931348623157e308,                  // max finite
        3.141592653589793,
        std::nextafter(1.0, 2.0),
    };
    const std::string payload =
        csense::store::encode_doubles(values.data(), values.size());
    std::vector<double> round(values.size(), 42.0);
    ASSERT_TRUE(csense::store::decode_doubles(payload, round.data(),
                                              round.size()));
    for (std::size_t i = 0; i < values.size(); ++i) {
        // Bit-exact, including the sign of zero.
        EXPECT_EQ(std::memcmp(&values[i], &round[i], sizeof(double)), 0)
            << "value " << i << " did not round-trip exactly";
    }
}

TEST(ResultStore, DecodeDoublesRejectsMalformedPayloads) {
    double out[2];
    EXPECT_FALSE(csense::store::decode_doubles("", out, 2));
    EXPECT_FALSE(csense::store::decode_doubles("1.0", out, 2));
    EXPECT_FALSE(csense::store::decode_doubles("1.0 2.0 3.0", out, 2));
    EXPECT_FALSE(csense::store::decode_doubles("1.0 bogus", out, 2));
    EXPECT_TRUE(csense::store::decode_doubles("1.0 2.0", out, 2));
}

TEST(ResultStore, CheckpointedReplicationsMatchUninterruptedBitwise) {
    // The campaign-layer integration: a checkpointed run interrupted
    // after k replications and resumed must return results bit-identical
    // to both the uninterrupted checkpointed run and the plain
    // run_replications baseline.
    csense::sim::campaign_options options;
    options.replications = 8;
    options.shard_size = 2;
    options.seed = 99;
    const auto replicate = [](std::size_t i, csense::stats::rng& gen) {
        return gen.uniform() + static_cast<double>(i);
    };
    const auto encode = [](const double& v) {
        return csense::store::encode_doubles(&v, 1);
    };
    const auto decode = [](std::string_view payload, double& v) {
        return csense::store::decode_doubles(payload, &v, 1);
    };
    const auto baseline =
        csense::sim::run_replications<double>(options, replicate);

    const fs::path root = fresh_root("store_campaign");
    std::uint64_t computed_first;
    {
        result_store store(root, "test/1");
        // "Interrupted" run: only replications [0, 4) get stored (a
        // kill after the first shards completed).
        csense::sim::campaign_options partial = options;
        partial.replications = 4;
        csense::sim::run_replications_checkpointed<double>(
            partial, &store, "camp", replicate, encode, decode);
        computed_first = store.stats().writes;
    }
    result_store store(root, "test/1");
    const auto resumed =
        csense::sim::run_replications_checkpointed<double>(
            options, &store, "camp", replicate, encode, decode);
    ASSERT_EQ(resumed.size(), baseline.size());
    for (std::size_t i = 0; i < baseline.size(); ++i) {
        EXPECT_EQ(std::memcmp(&baseline[i], &resumed[i], sizeof(double)), 0)
            << "replication " << i << " diverged after resume";
    }
    EXPECT_EQ(computed_first, 4u);
    EXPECT_EQ(store.stats().hits, 4u) << "resume must load completed shards";
    EXPECT_EQ(store.stats().writes, 4u) << "resume must compute the rest";
}

}  // namespace
