// Tests for the deterministic RNG: reproducibility, stream independence,
// range correctness, and distribution moments.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "src/stats/rng.hpp"

namespace {

using csense::stats::rng;

TEST(Rng, SameSeedSameSequence) {
    rng a(123), b(123);
    for (int i = 0; i < 1000; ++i) {
        ASSERT_EQ(a.next(), b.next());
    }
}

TEST(Rng, DifferentSeedsDiffer) {
    rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i) {
        if (a.next() == b.next()) ++same;
    }
    EXPECT_EQ(same, 0);
}

TEST(Rng, UniformInUnitInterval) {
    rng gen(7);
    for (int i = 0; i < 100000; ++i) {
        const double u = gen.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
    }
}

TEST(Rng, UniformMeanAndVariance) {
    rng gen(11);
    double sum = 0.0, sum2 = 0.0;
    const int n = 200000;
    for (int i = 0; i < n; ++i) {
        const double u = gen.uniform();
        sum += u;
        sum2 += u * u;
    }
    const double mean = sum / n;
    const double var = sum2 / n - mean * mean;
    EXPECT_NEAR(mean, 0.5, 0.005);
    EXPECT_NEAR(var, 1.0 / 12.0, 0.005);
}

TEST(Rng, UniformRangeRespectsBounds) {
    rng gen(3);
    for (int i = 0; i < 10000; ++i) {
        const double x = gen.uniform(-5.0, 3.0);
        ASSERT_GE(x, -5.0);
        ASSERT_LT(x, 3.0);
    }
}

TEST(Rng, UniformIntCoversRangeUniformly) {
    rng gen(5);
    std::vector<int> counts(10, 0);
    const int n = 100000;
    for (int i = 0; i < n; ++i) {
        ++counts[gen.uniform_int(10)];
    }
    for (int c : counts) {
        EXPECT_NEAR(static_cast<double>(c), n / 10.0, 5.0 * std::sqrt(n / 10.0));
    }
}

TEST(Rng, UniformIntOneValue) {
    rng gen(9);
    for (int i = 0; i < 100; ++i) {
        EXPECT_EQ(gen.uniform_int(1), 0u);
    }
}

TEST(Rng, NormalMoments) {
    rng gen(13);
    double sum = 0.0, sum2 = 0.0, sum3 = 0.0;
    const int n = 400000;
    for (int i = 0; i < n; ++i) {
        const double z = gen.normal();
        sum += z;
        sum2 += z * z;
        sum3 += z * z * z;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.01);
    EXPECT_NEAR(sum2 / n, 1.0, 0.02);
    EXPECT_NEAR(sum3 / n, 0.0, 0.05);
}

TEST(Rng, NormalWithParameters) {
    rng gen(17);
    double sum = 0.0, sum2 = 0.0;
    const int n = 200000;
    for (int i = 0; i < n; ++i) {
        const double x = gen.normal(10.0, 3.0);
        sum += x;
        sum2 += x * x;
    }
    const double mean = sum / n;
    EXPECT_NEAR(mean, 10.0, 0.05);
    EXPECT_NEAR(std::sqrt(sum2 / n - mean * mean), 3.0, 0.05);
}

TEST(Rng, ExponentialMean) {
    rng gen(19);
    double sum = 0.0;
    const int n = 200000;
    for (int i = 0; i < n; ++i) sum += gen.exponential(2.0);
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, SplitIsIndependentOfDrawCount) {
    rng a(42);
    rng b(42);
    b.next();
    b.next();
    b.next();
    // Children depend only on the parent's seed and the tag.
    rng child_a = a.split("stream");
    rng child_b = b.split("stream");
    for (int i = 0; i < 100; ++i) {
        ASSERT_EQ(child_a.next(), child_b.next());
    }
}

TEST(Rng, SplitDifferentTagsDiffer) {
    rng parent(42);
    rng a = parent.split("alpha");
    rng b = parent.split("beta");
    int same = 0;
    for (int i = 0; i < 64; ++i) {
        if (a.next() == b.next()) ++same;
    }
    EXPECT_EQ(same, 0);
}

TEST(Rng, IntegerSplitAdjacentTagsDiffer) {
    rng parent(42);
    rng a = parent.split(std::uint64_t{1});
    rng b = parent.split(std::uint64_t{2});
    int same = 0;
    for (int i = 0; i < 64; ++i) {
        if (a.next() == b.next()) ++same;
    }
    EXPECT_EQ(same, 0);
}

TEST(Rng, SplitStreamsLookUncorrelated) {
    // Average pairwise correlation of uniforms across many child streams.
    rng parent(31);
    const int streams = 50, draws = 200;
    std::vector<std::vector<double>> data(streams);
    for (int s = 0; s < streams; ++s) {
        rng child = parent.split(static_cast<std::uint64_t>(s));
        for (int i = 0; i < draws; ++i) data[s].push_back(child.uniform());
    }
    double worst = 0.0;
    for (int s = 1; s < streams; ++s) {
        double corr = 0.0;
        for (int i = 0; i < draws; ++i) {
            corr += (data[0][i] - 0.5) * (data[s][i] - 0.5);
        }
        corr /= draws * (1.0 / 12.0);
        worst = std::max(worst, std::abs(corr));
    }
    EXPECT_LT(worst, 0.35);  // ~4.9 sigma for n = 200
}

TEST(Rng, DistinctValues64Bit) {
    rng gen(23);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 10000; ++i) seen.insert(gen.next());
    EXPECT_EQ(seen.size(), 10000u);
}

}  // namespace
