// Cross-process shard equivalence: `csense_bench --shard i/k` runs over
// k separate checkpoint stores, merged by csense_merge, must emit JSON
// byte-identical to one single-process `--no-timings` run — including
// after one shard is SIGKILLed mid-run and resumed. This is the in-tree
// twin of the CI shard-merge smoke job.
#include <gtest/gtest.h>

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>

#if __has_include(<sys/wait.h>)
#include <sys/wait.h>
#include <unistd.h>
#define CSENSE_HAVE_FORK 1
#else
#define CSENSE_HAVE_FORK 0
#endif

#ifndef CSENSE_MERGE_BINARY

namespace {
TEST(ShardMerge, SkippedWithoutMergeTool) {
    GTEST_SKIP() << "csense_merge not built (CSENSE_BUILD_TOOLS=OFF)";
}
}  // namespace

#else

namespace {

namespace fs = std::filesystem;

std::string read_file(const fs::path& path) {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

/// Runs `binary args` in `workdir` under `env` (plus CSENSE_FAST=1 —
/// the CSENSE_* knobs are part of every checkpoint key, so reference,
/// shard and merge invocations must share them exactly).
int run_cmd(const fs::path& workdir, const std::string& binary,
            const std::string& args, const std::string& env,
            const fs::path& log) {
    const std::string command = "cd \"" + workdir.string() +
                                "\" && CSENSE_FAST=1 " + env + " \"" +
                                binary + "\" " + args + " > \"" +
                                log.string() + "\" 2>&1";
    const int code = std::system(command.c_str());
#ifdef WEXITSTATUS
    return WIFEXITED(code) ? WEXITSTATUS(code) : -1;
#else
    return code;
#endif
}

/// Reference run + k shard runs + merge for one campaign filter; then
/// the byte-compare. `env` carries the campaign's REPS/NMAX knobs.
void expect_sharded_equivalence(const std::string& tag,
                                const std::string& filter,
                                const std::string& env, int k) {
    const fs::path base = fs::path(::testing::TempDir()) / tag;
    fs::remove_all(base);
    fs::create_directories(base);
    ASSERT_EQ(run_cmd(base, CSENSE_BENCH_BINARY,
                      "--filter '" + filter +
                          "' --no-timings --json ref.json",
                      env, base / "ref.log"),
              0)
        << read_file(base / "ref.log");
    std::string shard_dirs;
    for (int i = 0; i < k; ++i) {
        const std::string dir = "sh" + std::to_string(i);
        shard_dirs += dir + " ";
        ASSERT_EQ(run_cmd(base, CSENSE_BENCH_BINARY,
                          "--filter '" + filter + "' --no-timings --shard " +
                              std::to_string(i) + "/" + std::to_string(k) +
                              " --checkpoint " + dir,
                          env, base / ("shard" + std::to_string(i) + ".log")),
                  0)
            << read_file(base / ("shard" + std::to_string(i) + ".log"));
    }
    ASSERT_EQ(run_cmd(base, CSENSE_MERGE_BINARY,
                      "--out merged " + shard_dirs + "--bench \"" +
                          CSENSE_BENCH_BINARY + "\" --json merged.json",
                      env, base / "merge.log"),
              0)
        << read_file(base / "merge.log");
    const std::string ref = read_file(base / "ref.json");
    ASSERT_FALSE(ref.empty());
    EXPECT_EQ(ref, read_file(base / "merged.json"))
        << "merged " << k << "-way shard run must reproduce the "
        << "single-process document byte-for-byte";
}

TEST(ShardMerge, Camp05ThreeWayMergeIsByteIdentical) {
    // NMAX caps the density sweep at one N so the test stays fast;
    // REPS=3 gives each of the three shard processes exactly one
    // replication to own.
    expect_sharded_equivalence(
        "csense_shard_camp05", "camp05*",
        "CSENSE_CAMP05_NMAX=200 CSENSE_CAMP05_REPS=3", 3);
}

TEST(ShardMerge, Camp06ThreeWayMergeIsByteIdentical) {
    expect_sharded_equivalence(
        "csense_shard_camp06", "camp06*",
        "CSENSE_CAMP06_NMAX=10 CSENSE_CAMP06_REPS=3", 3);
}

TEST(ShardMerge, KilledShardRefusesToMergeThenResumesByteIdentical) {
#if !CSENSE_HAVE_FORK
    GTEST_SKIP() << "needs fork/kill";
#else
    // Shard 2 is SIGKILLed after its camp05 replication lands but while
    // the fault drill is still sleeping: the store holds real records
    // but no manifest. csense_merge must refuse (exit 5, missing-shard)
    // rather than merge an incomplete shard; after the shard is resumed
    // the merge must produce the byte-identical document.
    const fs::path base = fs::path(::testing::TempDir()) / "csense_shard_kill";
    fs::remove_all(base);
    fs::create_directories(base);
    const std::string filter = "camp05*,x00_fault_drill";
    const std::string env =
        "CSENSE_CAMP05_NMAX=200 CSENSE_CAMP05_REPS=3 "
        "CSENSE_DRILL_MODE=sleep CSENSE_DRILL_MS=2000";
    ASSERT_EQ(run_cmd(base, CSENSE_BENCH_BINARY,
                      "--filter '" + filter +
                          "' --no-timings --json ref.json",
                      env, base / "ref.log"),
              0)
        << read_file(base / "ref.log");
    for (int i = 0; i < 2; ++i) {
        ASSERT_EQ(run_cmd(base, CSENSE_BENCH_BINARY,
                          "--filter '" + filter + "' --no-timings --shard " +
                              std::to_string(i) +
                              "/3 --checkpoint sh" + std::to_string(i),
                          env, base / ("shard" + std::to_string(i) + ".log")),
                  0)
            << read_file(base / ("shard" + std::to_string(i) + ".log"));
    }

    const pid_t child = fork();
    ASSERT_GE(child, 0);
    if (child == 0) {
        const std::string command =
            "cd \"" + base.string() + "\" && exec env " + env +
            " CSENSE_FAST=1 \"" + CSENSE_BENCH_BINARY + "\" --filter '" +
            filter + "' --no-timings --shard 2/3 --checkpoint sh2 "
            "> shard2_killed.log 2>&1";
        execl("/bin/sh", "sh", "-c", command.c_str(),
              static_cast<char*>(nullptr));
        _exit(127);
    }
    // Wait until shard 2's camp05 replication record lands (the drill
    // is sleeping by then — scenarios run in name order), then SIGKILL.
    const fs::path store = base / "sh2";
    bool replicated = false;
    for (int i = 0; i < 2000 && !replicated; ++i) {
        if (fs::exists(store)) {
            for (const auto& entry : fs::directory_iterator(store)) {
                if (entry.path().filename().string().rfind("shard_camp05",
                                                           0) == 0) {
                    replicated = true;
                    break;
                }
            }
        }
        if (!replicated) {
            std::this_thread::sleep_for(std::chrono::milliseconds(10));
        }
    }
    kill(child, SIGKILL);
    int status = 0;
    waitpid(child, &status, 0);
    ASSERT_TRUE(replicated)
        << "shard 2 never wrote its replication record; log:\n"
        << read_file(base / "shard2_killed.log");
    ASSERT_FALSE(WIFEXITED(status) && WEXITSTATUS(status) == 0)
        << "shard 2 was supposed to die mid-run";

    // An incomplete shard (records, no manifest) must refuse with the
    // documented missing-shard exit code and write nothing.
    EXPECT_EQ(run_cmd(base, CSENSE_MERGE_BINARY,
                      "--out merged sh0 sh1 sh2", env,
                      base / "merge_refused.log"),
              5)
        << read_file(base / "merge_refused.log");
    EXPECT_NE(read_file(base / "merge_refused.log").find("missing-shard"),
              std::string::npos);
    EXPECT_FALSE(fs::exists(base / "merged"))
        << "a refused merge must not write the merged store";

    // Resume shard 2 over its own store (the stored replication loads,
    // the drill recomputes, the manifest lands), then merge for real.
    ASSERT_EQ(run_cmd(base, CSENSE_BENCH_BINARY,
                      "--filter '" + filter +
                          "' --no-timings --shard 2/3 --checkpoint sh2",
                      env, base / "shard2_resume.log"),
              0)
        << read_file(base / "shard2_resume.log");
    ASSERT_EQ(run_cmd(base, CSENSE_MERGE_BINARY,
                      "--out merged sh0 sh1 sh2 --bench \"" +
                          std::string(CSENSE_BENCH_BINARY) +
                          "\" --json merged.json",
                      env, base / "merge.log"),
              0)
        << read_file(base / "merge.log");
    const std::string ref = read_file(base / "ref.json");
    ASSERT_FALSE(ref.empty());
    EXPECT_EQ(ref, read_file(base / "merged.json"))
        << "kill -9 of one shard + resume + merge must reproduce the "
           "single-process document byte-for-byte";
#endif
}

}  // namespace

#endif  // CSENSE_MERGE_BINARY
