// Discrete-event kernel: ordering, ties, cancellation, and the
// clock-before-action contract (regression test for scheduling relative
// to a stale clock).
#include <gtest/gtest.h>

#include <vector>

#include "src/sim/event_queue.hpp"
#include "src/sim/simulator.hpp"

namespace {

using namespace csense::sim;

TEST(EventQueue, OrdersByTime) {
    event_queue q;
    std::vector<int> order;
    q.schedule(30.0, [&] { order.push_back(3); });
    q.schedule(10.0, [&] { order.push_back(1); });
    q.schedule(20.0, [&] { order.push_back(2); });
    while (!q.empty()) q.run_next();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, TiesFireInInsertionOrder) {
    event_queue q;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i) {
        q.schedule(5.0, [&order, i] { order.push_back(i); });
    }
    while (!q.empty()) q.run_next();
    for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(EventQueue, CancelPreventsExecution) {
    event_queue q;
    bool fired = false;
    const auto id = q.schedule(1.0, [&] { fired = true; });
    EXPECT_TRUE(q.cancel(id));
    EXPECT_FALSE(q.cancel(id));  // second cancel is a no-op
    EXPECT_TRUE(q.empty());
    EXPECT_FALSE(fired);
}

TEST(EventQueue, SizeTracksPending) {
    event_queue q;
    const auto a = q.schedule(1.0, [] {});
    q.schedule(2.0, [] {});
    EXPECT_EQ(q.size(), 2u);
    q.cancel(a);
    EXPECT_EQ(q.size(), 1u);
    q.run_next();
    EXPECT_EQ(q.size(), 0u);
}

TEST(EventQueue, NextTimeSkipsCancelled) {
    event_queue q;
    const auto a = q.schedule(1.0, [] {});
    q.schedule(5.0, [] {});
    q.cancel(a);
    EXPECT_DOUBLE_EQ(q.next_time(), 5.0);
}

TEST(EventQueue, ErrorsWhenEmpty) {
    event_queue q;
    EXPECT_THROW(q.next_time(), std::logic_error);
    EXPECT_THROW(q.run_next(), std::logic_error);
}

TEST(EventQueue, PopNextAtMostRespectsHorizonAndSkipsCancelled) {
    // The fused horizon check + pop behind simulator::run_until: it must
    // refuse events beyond the horizon, skip cancelled entries, and pop
    // in the same (time, insertion) order as next_time()/pop_next().
    event_queue q;
    EXPECT_FALSE(q.pop_next_at_most(100.0).has_value());
    const auto a = q.schedule(1.0, [] {});
    q.schedule(5.0, [] {});
    q.schedule(9.0, [] {});
    EXPECT_FALSE(q.pop_next_at_most(0.5).has_value());
    q.cancel(a);
    EXPECT_FALSE(q.pop_next_at_most(1.0).has_value())
        << "the cancelled 1.0 entry must not satisfy the horizon";
    auto next = q.pop_next_at_most(5.0);
    ASSERT_TRUE(next.has_value());
    EXPECT_DOUBLE_EQ(next->first, 5.0);
    EXPECT_FALSE(q.pop_next_at_most(8.9).has_value());
    next = q.pop_next_at_most(9.0);  // inclusive horizon
    ASSERT_TRUE(next.has_value());
    EXPECT_DOUBLE_EQ(next->first, 9.0);
    EXPECT_TRUE(q.empty());
}

TEST(Simulator, ClockAdvancesBeforeAction) {
    // Regression: actions must observe now() == their scheduled time, so
    // relative scheduling from inside a callback is correct.
    simulator sim;
    std::vector<double> observed;
    sim.schedule_in(34.0, [&] {
        observed.push_back(sim.now());
        sim.schedule_in(9.0, [&] { observed.push_back(sim.now()); });
    });
    sim.run_until(100.0);
    ASSERT_EQ(observed.size(), 2u);
    EXPECT_DOUBLE_EQ(observed[0], 34.0);
    EXPECT_DOUBLE_EQ(observed[1], 43.0);
}

TEST(Simulator, RunUntilIsInclusiveAndAdvancesClock) {
    simulator sim;
    int fired = 0;
    sim.schedule_at(10.0, [&] { ++fired; });
    sim.schedule_at(20.0, [&] { ++fired; });
    sim.run_until(10.0);
    EXPECT_EQ(fired, 1);  // events at exactly `until` run
    EXPECT_DOUBLE_EQ(sim.now(), 10.0);
    sim.run_until(50.0);
    EXPECT_EQ(fired, 2);
    EXPECT_DOUBLE_EQ(sim.now(), 50.0);  // clock reaches `until` even if idle
}

TEST(Simulator, CancelInFlight) {
    simulator sim;
    bool fired = false;
    const auto id = sim.schedule_in(5.0, [&] { fired = true; });
    sim.schedule_in(1.0, [&] { sim.cancel(id); });
    sim.run_until(10.0);
    EXPECT_FALSE(fired);
    EXPECT_EQ(sim.events_executed(), 1u);
}

TEST(Simulator, RejectsPastScheduling) {
    simulator sim;
    sim.schedule_in(1.0, [] {});
    sim.run_until(5.0);
    EXPECT_THROW(sim.schedule_at(2.0, [] {}), std::invalid_argument);
    EXPECT_THROW(sim.schedule_in(-1.0, [] {}), std::invalid_argument);
}

TEST(Simulator, CascadedEventsRunAll) {
    simulator sim;
    int count = 0;
    std::function<void()> chain = [&] {
        if (++count < 100) sim.schedule_in(1.0, chain);
    };
    sim.schedule_in(1.0, chain);
    sim.run_all();
    EXPECT_EQ(count, 100);
    EXPECT_DOUBLE_EQ(sim.now(), 100.0);
}

TEST(EventQueue, BoundedMemoryOverLongRuns) {
    // Regression for the append-only store: scheduling ~1M events over
    // the queue's lifetime must not grow internal state linearly. With at
    // most 8 events pending at once, the slot table stays at the pending
    // high-water mark and the heap stays O(pending).
    event_queue q;
    std::uint64_t fired = 0;
    double t = 0.0;
    for (int wave = 0; wave < 125'000; ++wave) {
        for (int i = 0; i < 8; ++i) {
            q.schedule(t + i, [&fired] { ++fired; });
        }
        while (!q.empty()) t = q.run_next();
        t += 1.0;
    }
    EXPECT_EQ(fired, 1'000'000u);
    EXPECT_LE(q.slot_count(), 8u);
    EXPECT_LE(q.heap_size(), 8u);
}

TEST(EventQueue, CancelHeavyHeapStaysCompacted) {
    // The MAC's timer pattern: schedule far in the future, cancel,
    // reschedule. Cancelled entries cannot be popped off the heap top
    // (their times never surface), so only compaction bounds the heap.
    event_queue q;
    q.schedule(1e12, [] {});  // one live far-future event
    for (int i = 0; i < 200'000; ++i) {
        const auto id = q.schedule(1e9 + i, [] {});
        ASSERT_TRUE(q.cancel(id));
    }
    EXPECT_EQ(q.size(), 1u);
    EXPECT_LE(q.slot_count(), 4u);    // the cancelled slot is recycled
    EXPECT_LE(q.heap_size(), 256u);   // stale entries were compacted away
    EXPECT_DOUBLE_EQ(q.next_time(), 1e12);
}

TEST(EventQueue, StaleIdAfterSlotReuseIsSafe) {
    // An id from a fired/cancelled event must never cancel the slot's
    // next occupant (generation tag regression).
    event_queue q;
    bool first = false, second = false;
    const auto a = q.schedule(1.0, [&] { first = true; });
    q.run_next();  // fires `a`, freeing its slot
    const auto b = q.schedule(2.0, [&] { second = true; });
    EXPECT_NE(a, b);           // reused slot, new generation
    EXPECT_FALSE(q.cancel(a)); // stale id is a no-op...
    EXPECT_EQ(q.size(), 1u);   // ...and the new event survives
    q.run_next();
    EXPECT_TRUE(first);
    EXPECT_TRUE(second);
}

TEST(EventQueue, CancelledSlotReuseKeepsOrdering) {
    // Cancelling and reusing slots must not disturb the time/insertion
    // ordering contract.
    event_queue q;
    std::vector<int> order;
    const auto a = q.schedule(5.0, [&] { order.push_back(-1); });
    q.schedule(10.0, [&] { order.push_back(2); });
    q.cancel(a);
    q.schedule(5.0, [&] { order.push_back(1); });  // reuses a's slot
    while (!q.empty()) q.run_next();
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(Simulator, DeterministicReplay) {
    auto run = [] {
        simulator sim;
        std::vector<double> times;
        for (int i = 0; i < 50; ++i) {
            sim.schedule_in(i * 0.7, [&times, &sim] { times.push_back(sim.now()); });
        }
        sim.run_all();
        return times;
    };
    EXPECT_EQ(run(), run());
}

}  // namespace
