// Discrete-event kernel: ordering, ties, cancellation, the
// clock-before-action contract (regression test for scheduling relative
// to a stale clock), and the allocation-free hot-path guarantee.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <new>
#include <vector>

#include "src/capacity/rate_table.hpp"
#include "src/mac/network.hpp"
#include "src/sim/event_queue.hpp"
#include "src/sim/simulator.hpp"

// Counting allocator hook for the zero-allocation-per-event tests.
// This test binary owns the global operator new/delete (each suite is
// its own executable, so nothing else is affected). Skipped under
// sanitizers, whose runtimes interpose the allocator themselves.
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define CSENSE_ALLOC_HOOK 0
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define CSENSE_ALLOC_HOOK 0
#else
#define CSENSE_ALLOC_HOOK 1
#endif
#else
#define CSENSE_ALLOC_HOOK 1
#endif

#if CSENSE_ALLOC_HOOK
namespace {
std::uint64_t g_allocation_count = 0;

void* counted_alloc(std::size_t size) {
    ++g_allocation_count;
    if (void* p = std::malloc(size ? size : 1)) return p;
    throw std::bad_alloc{};
}
}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void* operator new(std::size_t size, std::align_val_t) {
    return counted_alloc(size);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
    std::free(p);
}
#endif  // CSENSE_ALLOC_HOOK

namespace {

using namespace csense::sim;

TEST(EventQueue, OrdersByTime) {
    event_queue q;
    std::vector<int> order;
    q.schedule(30.0, [&] { order.push_back(3); });
    q.schedule(10.0, [&] { order.push_back(1); });
    q.schedule(20.0, [&] { order.push_back(2); });
    while (!q.empty()) q.run_next();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, TiesFireInInsertionOrder) {
    event_queue q;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i) {
        q.schedule(5.0, [&order, i] { order.push_back(i); });
    }
    while (!q.empty()) q.run_next();
    for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(EventQueue, CancelPreventsExecution) {
    event_queue q;
    bool fired = false;
    const auto id = q.schedule(1.0, [&] { fired = true; });
    EXPECT_TRUE(q.cancel(id));
    EXPECT_FALSE(q.cancel(id));  // second cancel is a no-op
    EXPECT_TRUE(q.empty());
    EXPECT_FALSE(fired);
}

TEST(EventQueue, SizeTracksPending) {
    event_queue q;
    const auto a = q.schedule(1.0, [] {});
    q.schedule(2.0, [] {});
    EXPECT_EQ(q.size(), 2u);
    q.cancel(a);
    EXPECT_EQ(q.size(), 1u);
    q.run_next();
    EXPECT_EQ(q.size(), 0u);
}

TEST(EventQueue, NextTimeSkipsCancelled) {
    event_queue q;
    const auto a = q.schedule(1.0, [] {});
    q.schedule(5.0, [] {});
    q.cancel(a);
    EXPECT_DOUBLE_EQ(q.next_time(), 5.0);
}

TEST(EventQueue, ErrorsWhenEmpty) {
    event_queue q;
    EXPECT_THROW(q.next_time(), std::logic_error);
    EXPECT_THROW(q.run_next(), std::logic_error);
}

TEST(EventQueue, PopNextAtMostRespectsHorizonAndSkipsCancelled) {
    // The fused horizon check + pop behind simulator::run_until: it must
    // refuse events beyond the horizon, skip cancelled entries, and pop
    // in the same (time, insertion) order as next_time()/pop_next().
    event_queue q;
    EXPECT_FALSE(q.pop_next_at_most(100.0).has_value());
    const auto a = q.schedule(1.0, [] {});
    q.schedule(5.0, [] {});
    q.schedule(9.0, [] {});
    EXPECT_FALSE(q.pop_next_at_most(0.5).has_value());
    q.cancel(a);
    EXPECT_FALSE(q.pop_next_at_most(1.0).has_value())
        << "the cancelled 1.0 entry must not satisfy the horizon";
    auto next = q.pop_next_at_most(5.0);
    ASSERT_TRUE(next.has_value());
    EXPECT_DOUBLE_EQ(next->first, 5.0);
    EXPECT_FALSE(q.pop_next_at_most(8.9).has_value());
    next = q.pop_next_at_most(9.0);  // inclusive horizon
    ASSERT_TRUE(next.has_value());
    EXPECT_DOUBLE_EQ(next->first, 9.0);
    EXPECT_TRUE(q.empty());
}

TEST(Simulator, ClockAdvancesBeforeAction) {
    // Regression: actions must observe now() == their scheduled time, so
    // relative scheduling from inside a callback is correct.
    simulator sim;
    std::vector<double> observed;
    sim.schedule_in(34.0, [&] {
        observed.push_back(sim.now());
        sim.schedule_in(9.0, [&] { observed.push_back(sim.now()); });
    });
    sim.run_until(100.0);
    ASSERT_EQ(observed.size(), 2u);
    EXPECT_DOUBLE_EQ(observed[0], 34.0);
    EXPECT_DOUBLE_EQ(observed[1], 43.0);
}

TEST(Simulator, RunUntilIsInclusiveAndAdvancesClock) {
    simulator sim;
    int fired = 0;
    sim.schedule_at(10.0, [&] { ++fired; });
    sim.schedule_at(20.0, [&] { ++fired; });
    sim.run_until(10.0);
    EXPECT_EQ(fired, 1);  // events at exactly `until` run
    EXPECT_DOUBLE_EQ(sim.now(), 10.0);
    sim.run_until(50.0);
    EXPECT_EQ(fired, 2);
    EXPECT_DOUBLE_EQ(sim.now(), 50.0);  // clock reaches `until` even if idle
}

TEST(Simulator, CancelInFlight) {
    simulator sim;
    bool fired = false;
    const auto id = sim.schedule_in(5.0, [&] { fired = true; });
    sim.schedule_in(1.0, [&] { sim.cancel(id); });
    sim.run_until(10.0);
    EXPECT_FALSE(fired);
    EXPECT_EQ(sim.events_executed(), 1u);
}

TEST(Simulator, RejectsPastScheduling) {
    simulator sim;
    sim.schedule_in(1.0, [] {});
    sim.run_until(5.0);
    EXPECT_THROW(sim.schedule_at(2.0, [] {}), std::invalid_argument);
    EXPECT_THROW(sim.schedule_in(-1.0, [] {}), std::invalid_argument);
}

TEST(Simulator, CascadedEventsRunAll) {
    simulator sim;
    int count = 0;
    std::function<void()> chain = [&] {
        if (++count < 100) sim.schedule_in(1.0, chain);
    };
    sim.schedule_in(1.0, chain);
    sim.run_all();
    EXPECT_EQ(count, 100);
    EXPECT_DOUBLE_EQ(sim.now(), 100.0);
}

TEST(EventQueue, BoundedMemoryOverLongRuns) {
    // Regression for the append-only store: scheduling ~1M events over
    // the queue's lifetime must not grow internal state linearly. With at
    // most 8 events pending at once, the slot table stays at the pending
    // high-water mark and the heap stays O(pending).
    event_queue q;
    std::uint64_t fired = 0;
    double t = 0.0;
    for (int wave = 0; wave < 125'000; ++wave) {
        for (int i = 0; i < 8; ++i) {
            q.schedule(t + i, [&fired] { ++fired; });
        }
        while (!q.empty()) t = q.run_next();
        t += 1.0;
    }
    EXPECT_EQ(fired, 1'000'000u);
    EXPECT_LE(q.slot_count(), 8u);
    EXPECT_LE(q.heap_size(), 8u);
}

TEST(EventQueue, CancelHeavyHeapStaysCompacted) {
    // The MAC's timer pattern: schedule far in the future, cancel,
    // reschedule. Cancelled entries cannot be popped off the heap top
    // (their times never surface), so only compaction bounds the heap.
    event_queue q;
    q.schedule(1e12, [] {});  // one live far-future event
    for (int i = 0; i < 200'000; ++i) {
        const auto id = q.schedule(1e9 + i, [] {});
        ASSERT_TRUE(q.cancel(id));
    }
    EXPECT_EQ(q.size(), 1u);
    EXPECT_LE(q.slot_count(), 4u);    // the cancelled slot is recycled
    EXPECT_LE(q.heap_size(), 256u);   // stale entries were compacted away
    EXPECT_DOUBLE_EQ(q.next_time(), 1e12);
}

TEST(EventQueue, StaleIdAfterSlotReuseIsSafe) {
    // An id from a fired/cancelled event must never cancel the slot's
    // next occupant (generation tag regression).
    event_queue q;
    bool first = false, second = false;
    const auto a = q.schedule(1.0, [&] { first = true; });
    q.run_next();  // fires `a`, freeing its slot
    const auto b = q.schedule(2.0, [&] { second = true; });
    EXPECT_NE(a, b);           // reused slot, new generation
    EXPECT_FALSE(q.cancel(a)); // stale id is a no-op...
    EXPECT_EQ(q.size(), 1u);   // ...and the new event survives
    q.run_next();
    EXPECT_TRUE(first);
    EXPECT_TRUE(second);
}

TEST(EventQueue, CancelledSlotReuseKeepsOrdering) {
    // Cancelling and reusing slots must not disturb the time/insertion
    // ordering contract.
    event_queue q;
    std::vector<int> order;
    const auto a = q.schedule(5.0, [&] { order.push_back(-1); });
    q.schedule(10.0, [&] { order.push_back(2); });
    q.cancel(a);
    q.schedule(5.0, [&] { order.push_back(1); });  // reuses a's slot
    while (!q.empty()) q.run_next();
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(Allocation, SteadyStateKernelEventsAllocateNothing) {
    // The tentpole contract: once the slot table and wheel buckets hit
    // their high-water marks, scheduling, cancelling, and popping events
    // must not touch the heap at all (inline_action holds closures
    // in-object; the queue recycles slots and bucket storage).
#if !CSENSE_ALLOC_HOOK
    GTEST_SKIP() << "allocator hook disabled under sanitizers";
#else
    simulator sim;
    std::uint64_t fired = 0;
    // Warm up: reach the pending high-water mark, touch every wheel
    // bucket (> one full rotation of the 4096 x 9 us wheel), and leave
    // cancelled slots behind for reuse.
    const auto step = [&sim, &fired](int i) {
        const auto timeout = sim.schedule_in(
            40'000.0 + (i % 7) * 9.0, [&fired] { ++fired; });
        sim.schedule_in(9.0, [&fired] { ++fired; });
        sim.run_until(sim.now() + 9.0);
        sim.cancel(timeout);
    };
    for (int i = 0; i < 10'000; ++i) step(i);  // ~90 ms: > 2 rotations

    g_allocation_count = 0;
    for (int i = 0; i < 10'000; ++i) step(i);
    EXPECT_EQ(g_allocation_count, 0u)
        << "kernel hot path allocated in steady state";
#endif
}

TEST(Allocation, SteadyStateMacRunAllocatesNothing) {
    // End-to-end: a saturated two-pair broadcast run - DCF timers,
    // medium fan-out, frame delivery - in steady state performs zero
    // heap allocations per event. Warm-up runs until the transmission
    // log has been through its compaction cycle so vector capacities
    // (and the per-src stats map) are settled.
#if !CSENSE_ALLOC_HOOK
    GTEST_SKIP() << "allocator hook disabled under sanitizers";
#else
    using namespace csense;
    mac::network net(mac::radio_config{}, 4242);
    mac::mac_config sender_cfg;
    sender_cfg.sense = mac::cs_mode::energy_and_preamble;
    mac::mac_config receiver_cfg;
    const auto s1 = net.add_node(sender_cfg);
    const auto r1 = net.add_node(receiver_cfg);
    const auto s2 = net.add_node(sender_cfg);
    const auto r2 = net.add_node(receiver_cfg);
    const double audible = -60.0;
    net.set_link_gain_db(s1, r1, audible);
    net.set_link_gain_db(s2, r2, audible);
    net.set_link_gain_db(s1, s2, audible);
    net.set_link_gain_db(s1, r2, audible);
    net.set_link_gain_db(s2, r1, audible);
    net.set_link_gain_db(r1, r2, audible);
    const auto& rate = capacity::rate_by_mbps(24.0);
    net.node(s1).set_traffic(mac::traffic_mode::broadcast,
                             mac::broadcast_id, rate, 100);
    net.node(s2).set_traffic(mac::traffic_mode::broadcast,
                             mac::broadcast_id, rate, 100);
    // 100-byte frames at 24 Mb/s put >4096 transmissions on the air
    // well within two sim-seconds, forcing log compactions during
    // warm-up so capacities stop moving.
    net.run(2e6);
    const auto warmed_log = net.air().transmission_log_size();

    g_allocation_count = 0;
    net.run(1e6);
    EXPECT_EQ(g_allocation_count, 0u)
        << "MAC hot path allocated in steady state (warmed log size "
        << warmed_log << ")";
#endif
}

TEST(Simulator, DeterministicReplay) {
    auto run = [] {
        simulator sim;
        std::vector<double> times;
        for (int i = 0; i < 50; ++i) {
            sim.schedule_in(i * 0.7, [&times, &sim] { times.push_back(sim.now()); });
        }
        sim.run_all();
        return times;
    };
    EXPECT_EQ(run(), run());
}

}  // namespace
