// Discrete-event kernel: ordering, ties, cancellation, and the
// clock-before-action contract (regression test for scheduling relative
// to a stale clock).
#include <gtest/gtest.h>

#include <vector>

#include "src/sim/event_queue.hpp"
#include "src/sim/simulator.hpp"

namespace {

using namespace csense::sim;

TEST(EventQueue, OrdersByTime) {
    event_queue q;
    std::vector<int> order;
    q.schedule(30.0, [&] { order.push_back(3); });
    q.schedule(10.0, [&] { order.push_back(1); });
    q.schedule(20.0, [&] { order.push_back(2); });
    while (!q.empty()) q.run_next();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, TiesFireInInsertionOrder) {
    event_queue q;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i) {
        q.schedule(5.0, [&order, i] { order.push_back(i); });
    }
    while (!q.empty()) q.run_next();
    for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(EventQueue, CancelPreventsExecution) {
    event_queue q;
    bool fired = false;
    const auto id = q.schedule(1.0, [&] { fired = true; });
    EXPECT_TRUE(q.cancel(id));
    EXPECT_FALSE(q.cancel(id));  // second cancel is a no-op
    EXPECT_TRUE(q.empty());
    EXPECT_FALSE(fired);
}

TEST(EventQueue, SizeTracksPending) {
    event_queue q;
    const auto a = q.schedule(1.0, [] {});
    q.schedule(2.0, [] {});
    EXPECT_EQ(q.size(), 2u);
    q.cancel(a);
    EXPECT_EQ(q.size(), 1u);
    q.run_next();
    EXPECT_EQ(q.size(), 0u);
}

TEST(EventQueue, NextTimeSkipsCancelled) {
    event_queue q;
    const auto a = q.schedule(1.0, [] {});
    q.schedule(5.0, [] {});
    q.cancel(a);
    EXPECT_DOUBLE_EQ(q.next_time(), 5.0);
}

TEST(EventQueue, ErrorsWhenEmpty) {
    event_queue q;
    EXPECT_THROW(q.next_time(), std::logic_error);
    EXPECT_THROW(q.run_next(), std::logic_error);
}

TEST(Simulator, ClockAdvancesBeforeAction) {
    // Regression: actions must observe now() == their scheduled time, so
    // relative scheduling from inside a callback is correct.
    simulator sim;
    std::vector<double> observed;
    sim.schedule_in(34.0, [&] {
        observed.push_back(sim.now());
        sim.schedule_in(9.0, [&] { observed.push_back(sim.now()); });
    });
    sim.run_until(100.0);
    ASSERT_EQ(observed.size(), 2u);
    EXPECT_DOUBLE_EQ(observed[0], 34.0);
    EXPECT_DOUBLE_EQ(observed[1], 43.0);
}

TEST(Simulator, RunUntilIsInclusiveAndAdvancesClock) {
    simulator sim;
    int fired = 0;
    sim.schedule_at(10.0, [&] { ++fired; });
    sim.schedule_at(20.0, [&] { ++fired; });
    sim.run_until(10.0);
    EXPECT_EQ(fired, 1);  // events at exactly `until` run
    EXPECT_DOUBLE_EQ(sim.now(), 10.0);
    sim.run_until(50.0);
    EXPECT_EQ(fired, 2);
    EXPECT_DOUBLE_EQ(sim.now(), 50.0);  // clock reaches `until` even if idle
}

TEST(Simulator, CancelInFlight) {
    simulator sim;
    bool fired = false;
    const auto id = sim.schedule_in(5.0, [&] { fired = true; });
    sim.schedule_in(1.0, [&] { sim.cancel(id); });
    sim.run_until(10.0);
    EXPECT_FALSE(fired);
    EXPECT_EQ(sim.events_executed(), 1u);
}

TEST(Simulator, RejectsPastScheduling) {
    simulator sim;
    sim.schedule_in(1.0, [] {});
    sim.run_until(5.0);
    EXPECT_THROW(sim.schedule_at(2.0, [] {}), std::invalid_argument);
    EXPECT_THROW(sim.schedule_in(-1.0, [] {}), std::invalid_argument);
}

TEST(Simulator, CascadedEventsRunAll) {
    simulator sim;
    int count = 0;
    std::function<void()> chain = [&] {
        if (++count < 100) sim.schedule_in(1.0, chain);
    };
    sim.schedule_in(1.0, chain);
    sim.run_all();
    EXPECT_EQ(count, 100);
    EXPECT_DOUBLE_EQ(sim.now(), 100.0);
}

TEST(Simulator, DeterministicReplay) {
    auto run = [] {
        simulator sim;
        std::vector<double> times;
        for (int i = 0; i < 50; ++i) {
            sim.schedule_in(i * 0.7, [&times, &sim] { times.push_back(sim.now()); });
        }
        sim.run_all();
        return times;
    };
    EXPECT_EQ(run(), run());
}

}  // namespace
