// Root finding and optimization: Brent's methods and Nelder-Mead on
// functions with known solutions.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "src/stats/solve.hpp"

namespace {

using namespace csense::stats;

TEST(FindRoot, CosineRoot) {
    const auto result =
        find_root([](double x) { return std::cos(x); }, 0.0, 3.0);
    EXPECT_TRUE(result.converged);
    EXPECT_NEAR(result.x, std::numbers::pi / 2.0, 1e-9);
}

TEST(FindRoot, PolynomialRoot) {
    const auto result =
        find_root([](double x) { return x * x * x - 2.0; }, 0.0, 2.0);
    EXPECT_TRUE(result.converged);
    EXPECT_NEAR(result.x, std::cbrt(2.0), 1e-10);
}

TEST(FindRoot, EndpointRootReturnsImmediately) {
    const auto result = find_root([](double x) { return x; }, 0.0, 1.0);
    EXPECT_TRUE(result.converged);
    EXPECT_DOUBLE_EQ(result.x, 0.0);
}

TEST(FindRoot, RequiresBracket) {
    EXPECT_THROW(
        find_root([](double x) { return x * x + 1.0; }, -1.0, 1.0),
        std::invalid_argument);
}

TEST(FindRoot, SteepFunction) {
    const auto result = find_root(
        [](double x) { return std::tanh(100.0 * (x - 0.3)); }, 0.0, 1.0);
    EXPECT_TRUE(result.converged);
    EXPECT_NEAR(result.x, 0.3, 1e-7);
}

TEST(Minimize, Parabola) {
    const auto result = minimize(
        [](double x) { return (x - 1.7) * (x - 1.7) + 3.0; }, -10.0, 10.0);
    EXPECT_NEAR(result.x, 1.7, 1e-6);
    EXPECT_NEAR(result.fx, 3.0, 1e-10);
}

TEST(Minimize, AsymmetricFunction) {
    // min of x^4 - 3x^3 + 2 at x = 9/4.
    const auto result = minimize(
        [](double x) { return std::pow(x, 4) - 3.0 * std::pow(x, 3) + 2.0; },
        0.5, 5.0);
    EXPECT_NEAR(result.x, 2.25, 1e-5);
}

TEST(Minimize, MinimumAtBoundary) {
    const auto result = minimize([](double x) { return x; }, 2.0, 5.0);
    EXPECT_NEAR(result.x, 2.0, 1e-4);
}

TEST(NelderMead, Sphere) {
    const auto result = nelder_mead(
        [](const std::vector<double>& x) {
            double s = 0.0;
            for (double v : x) s += v * v;
            return s;
        },
        {3.0, -2.0, 1.0}, {1.0, 1.0, 1.0});
    EXPECT_TRUE(result.converged);
    for (double v : result.x) EXPECT_NEAR(v, 0.0, 1e-4);
}

TEST(NelderMead, Rosenbrock) {
    const auto result = nelder_mead(
        [](const std::vector<double>& x) {
            const double a = 1.0 - x[0];
            const double b = x[1] - x[0] * x[0];
            return a * a + 100.0 * b * b;
        },
        {-1.2, 1.0}, {0.5, 0.5}, 1e-12, 20000);
    EXPECT_NEAR(result.x[0], 1.0, 1e-3);
    EXPECT_NEAR(result.x[1], 1.0, 1e-3);
}

TEST(NelderMead, ShiftedQuadraticWithScales) {
    const auto result = nelder_mead(
        [](const std::vector<double>& x) {
            return (x[0] - 100.0) * (x[0] - 100.0) +
                   25.0 * (x[1] + 3.0) * (x[1] + 3.0);
        },
        {0.0, 0.0}, {10.0, 1.0}, 1e-12, 20000);
    EXPECT_NEAR(result.x[0], 100.0, 1e-2);
    EXPECT_NEAR(result.x[1], -3.0, 1e-3);
}

TEST(NelderMead, RejectsMismatchedScales) {
    EXPECT_THROW(nelder_mead([](const std::vector<double>&) { return 0.0; },
                             {1.0, 2.0}, {1.0}),
                 std::invalid_argument);
}

}  // namespace
