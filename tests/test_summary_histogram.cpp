// Streaming summaries (Welford) and histogram quantiles.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "src/stats/histogram.hpp"
#include "src/stats/rng.hpp"
#include "src/stats/summary.hpp"

namespace {

using namespace csense::stats;

TEST(RunningSummary, MatchesDirectComputation) {
    const std::vector<double> data = {1.0, 2.5, -3.0, 7.25, 0.0, 4.5};
    running_summary s;
    for (double x : data) s.add(x);
    double mean = 0.0;
    for (double x : data) mean += x;
    mean /= data.size();
    double var = 0.0;
    for (double x : data) var += (x - mean) * (x - mean);
    var /= data.size() - 1;
    EXPECT_EQ(s.count(), data.size());
    EXPECT_NEAR(s.mean(), mean, 1e-12);
    EXPECT_NEAR(s.variance(), var, 1e-12);
    EXPECT_DOUBLE_EQ(s.min(), -3.0);
    EXPECT_DOUBLE_EQ(s.max(), 7.25);
}

TEST(RunningSummary, EmptyAndSingle) {
    running_summary s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
    s.add(5.0);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
    EXPECT_DOUBLE_EQ(s.stderr_mean(), 0.0);
}

TEST(RunningSummary, MergeEqualsSequential) {
    rng gen(3);
    running_summary all, a, b;
    for (int i = 0; i < 1000; ++i) {
        const double x = gen.normal(2.0, 5.0);
        all.add(x);
        (i % 2 == 0 ? a : b).add(x);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), all.count());
    EXPECT_NEAR(a.mean(), all.mean(), 1e-10);
    EXPECT_NEAR(a.variance(), all.variance(), 1e-8);
    EXPECT_DOUBLE_EQ(a.min(), all.min());
    EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningSummary, MergeWithEmpty) {
    running_summary a, b;
    a.add(1.0);
    a.add(2.0);
    a.merge(b);
    EXPECT_EQ(a.count(), 2u);
    b.merge(a);
    EXPECT_EQ(b.count(), 2u);
    EXPECT_NEAR(b.mean(), 1.5, 1e-12);
}

TEST(RunningSummary, ConfidenceIntervalShrinks) {
    rng gen(5);
    running_summary small, large;
    for (int i = 0; i < 100; ++i) small.add(gen.normal());
    for (int i = 0; i < 10000; ++i) large.add(gen.normal());
    EXPECT_GT(small.ci_halfwidth(), large.ci_halfwidth());
    // 95% CI of N(0,1) mean with n = 10000 is about +-0.0196.
    EXPECT_NEAR(large.ci_halfwidth(), 1.96 / 100.0, 0.004);
}

TEST(Histogram, CountsAndRanges) {
    histogram h(0.0, 10.0, 10);
    for (int i = 0; i < 100; ++i) h.add(i * 0.1);  // 0.0 .. 9.9
    EXPECT_EQ(h.total(), 100u);
    EXPECT_EQ(h.underflow(), 0u);
    EXPECT_EQ(h.overflow(), 0u);
    for (std::size_t b = 0; b < 10; ++b) {
        EXPECT_EQ(h.count(b), 10u) << "bin " << b;
    }
}

TEST(Histogram, UnderflowOverflow) {
    histogram h(0.0, 1.0, 4);
    h.add(-0.5);
    h.add(1.5);
    h.add(1.0);  // hi boundary counts as overflow
    h.add(0.0);  // lo boundary counts in-range
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 2u);
    EXPECT_EQ(h.count(0), 1u);
}

TEST(Histogram, QuantilesOfUniform) {
    histogram h(0.0, 1.0, 100);
    rng gen(9);
    for (int i = 0; i < 100000; ++i) h.add(gen.uniform());
    EXPECT_NEAR(h.quantile(0.5), 0.5, 0.02);
    EXPECT_NEAR(h.quantile(0.1), 0.1, 0.02);
    EXPECT_NEAR(h.quantile(0.9), 0.9, 0.02);
}

TEST(Histogram, CdfMonotone) {
    histogram h(0.0, 10.0, 20);
    rng gen(11);
    for (int i = 0; i < 10000; ++i) h.add(gen.uniform(0.0, 10.0));
    double prev = -1.0;
    for (double x = -1.0; x <= 11.0; x += 0.5) {
        const double c = h.cdf(x);
        EXPECT_GE(c, prev);
        prev = c;
    }
    EXPECT_DOUBLE_EQ(h.cdf(-1.0), 0.0);
    EXPECT_DOUBLE_EQ(h.cdf(11.0), 1.0);
}

TEST(Histogram, RejectsBadConstruction) {
    EXPECT_THROW(histogram(1.0, 1.0, 10), std::invalid_argument);
    EXPECT_THROW(histogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(Histogram, QuantileErrors) {
    histogram h(0.0, 1.0, 4);
    EXPECT_THROW(h.quantile(0.5), std::logic_error);
    h.add(0.5);
    EXPECT_THROW(h.quantile(1.5), std::invalid_argument);
}

}  // namespace
