// The sweep-server protocol: request parsing (malformed input is a
// structured error, never a wrong-cell query), cache-key construction,
// hit/miss/coalesce behavior against an injected runner, and the real
// csense_sweep_serve binary end-to-end over its unix socket (warm hit,
// miss-then-schedule, malformed line, clean shutdown).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "src/serve/sweep_server.hpp"
#include "src/store/result_store.hpp"
#include "src/store/run_keys.hpp"

#if __has_include(<sys/socket.h>)
#include <sys/socket.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>
#define CSENSE_HAVE_SOCKETS 1
#else
#define CSENSE_HAVE_SOCKETS 0
#endif

namespace {

namespace fs = std::filesystem;
using namespace csense;

// --- parse_request ----------------------------------------------------

std::string parse_error_for(const std::string& line) {
    std::string error;
    const auto request = serve::parse_request(line, &error);
    EXPECT_FALSE(request.has_value()) << line;
    return error;
}

TEST(SweepServeParse, AcceptsAFullQuery) {
    std::string error;
    const auto request = serve::parse_request(
        R"({"op":"query","scenario":"fn12_slope_bound","seed":11,)"
        R"("env":{"CSENSE_FAST":"1","CSENSE_CAMP05_REPS":"3"}})",
        &error);
    ASSERT_TRUE(request.has_value()) << error;
    EXPECT_EQ(request->kind, serve::sweep_request::op::query);
    EXPECT_EQ(request->scenario, "fn12_slope_bound");
    EXPECT_EQ(request->seed, 11u);
    // env comes back sorted by name regardless of request order.
    ASSERT_EQ(request->env.size(), 2u);
    EXPECT_EQ(request->env[0].first, "CSENSE_CAMP05_REPS");
    EXPECT_EQ(request->env[1].first, "CSENSE_FAST");
}

TEST(SweepServeParse, SeedDefaultsToTheBenchDefault) {
    const auto request = serve::parse_request(
        R"({"op":"query","scenario":"fn12_slope_bound"})");
    ASSERT_TRUE(request.has_value());
    EXPECT_EQ(request->seed, 7u);
}

TEST(SweepServeParse, MalformedInputIsAStructuredError) {
    EXPECT_NE(parse_error_for("{nope").find("malformed JSON"),
              std::string::npos);
    EXPECT_NE(parse_error_for("42").find("JSON object"), std::string::npos);
    EXPECT_NE(parse_error_for(R"({"scenario":"x"})").find("'op'"),
              std::string::npos);
    EXPECT_NE(parse_error_for(R"({"op":"frob"})").find("unknown op"),
              std::string::npos);
    EXPECT_NE(parse_error_for(R"({"op":"query"})").find("scenario"),
              std::string::npos);
    EXPECT_NE(parse_error_for(
                  R"({"op":"query","scenario":"x","seed":"7"})")
                  .find("'seed'"),
              std::string::npos);
}

TEST(SweepServeParse, EnvOutsideTheNamespaceNeverQueriesACell) {
    // A typo'd knob must be rejected, not silently fingerprinted into a
    // different (always-miss) cache key.
    EXPECT_NE(parse_error_for(
                  R"({"op":"query","scenario":"x","env":{"PATH":"p"}})")
                  .find("CSENSE_*"),
              std::string::npos);
    EXPECT_NE(parse_error_for(R"({"op":"query","scenario":"x",)"
                              R"("env":{"CSENSE_THREADS":"4"}})")
                  .find("CSENSE_THREADS"),
              std::string::npos);
    EXPECT_NE(parse_error_for(R"({"op":"query","scenario":"x",)"
                              R"("env":{"CSENSE_FAST":1}})")
                  .find("must be a string"),
              std::string::npos);
    EXPECT_NE(parse_error_for(R"({"op":"query","scenario":"x",)"
                              R"("env":{"CSENSE_FAST":"1;2"}})")
                  .find("';'"),
              std::string::npos);
}

TEST(SweepServeParse, QueryKeyIsTheScenarioRecordKey) {
    // The whole point of the cache: a sweep query and a batch
    // `--checkpoint` run converge on the same store key.
    serve::sweep_request request;
    request.scenario = "fn12_slope_bound";
    request.seed = 7;
    request.env = {{"CSENSE_FAST", "1"}};
    EXPECT_EQ(serve::query_record_key(request),
              "scenario/fn12_slope_bound?seed=7&env=CSENSE_FAST=1"
              "&repeat=1&timings=0");
}

// --- sweep_server with an injected runner -----------------------------

struct server_fixture {
    fs::path store_dir;
    std::atomic<int> runs{0};
    std::atomic<bool> runner_ok{true};

    explicit server_fixture(const std::string& tag) {
        store_dir = fs::path(::testing::TempDir()) / tag;
        fs::remove_all(store_dir);
    }

    serve::sweep_server::config config() {
        serve::sweep_server::config cfg;
        cfg.store_root = store_dir;
        cfg.scenario_known = [](const std::string& name) {
            return name == "fake";
        };
        cfg.runner = [this](const serve::sweep_request&,
                            const std::string& key) {
            ++runs;
            if (!runner_ok) return false;
            store::result_store store(store_dir,
                                      std::string(store::kBenchStoreSchema));
            return store.put(key, R"({"name":"fake","value":42})");
        };
        return cfg;
    }
};

TEST(SweepServer, MissComputesOnceThenHits) {
    server_fixture f("csense_serve_misshit");
    serve::sweep_server server(f.config());
    const std::string query = R"({"op":"query","scenario":"fake"})";
    const std::string first = server.handle_line(query);
    EXPECT_NE(first.find(R"("status":"computed")"), std::string::npos)
        << first;
    EXPECT_NE(first.find(R"("value":42)"), std::string::npos) << first;
    const std::string second = server.handle_line(query);
    EXPECT_NE(second.find(R"("status":"hit")"), std::string::npos)
        << second;
    EXPECT_EQ(f.runs.load(), 1) << "a cached cell must not re-run its job";
    const auto stats = server.stats();
    EXPECT_EQ(stats.hits, 1u);
    EXPECT_EQ(stats.misses, 1u);
    EXPECT_EQ(stats.jobs_started, 1u);
}

TEST(SweepServer, UnknownScenarioAndFailedJobsAreErrors) {
    server_fixture f("csense_serve_errors");
    serve::sweep_server server(f.config());
    const std::string unknown =
        server.handle_line(R"({"op":"query","scenario":"typo"})");
    EXPECT_NE(unknown.find(R"("ok":false)"), std::string::npos) << unknown;
    EXPECT_NE(unknown.find("unknown scenario"), std::string::npos);

    // A runner that completes but never produces the record: the store,
    // not the runner's return value, defines success.
    f.runner_ok = false;
    const std::string failed =
        server.handle_line(R"({"op":"query","scenario":"fake"})");
    EXPECT_NE(failed.find(R"("ok":false)"), std::string::npos) << failed;
    EXPECT_NE(failed.find("did not produce a record"), std::string::npos);
    EXPECT_EQ(server.stats().errors, 2u);
}

TEST(SweepServer, ConcurrentIdenticalQueriesCoalesceOntoOneJob) {
    server_fixture f("csense_serve_coalesce");
    serve::sweep_server::config cfg = f.config();
    serve::sweep_server* handle = nullptr;
    cfg.runner = [&f, &handle](const serve::sweep_request&,
                               const std::string& key) {
        ++f.runs;
        // Hold the job open until the second query has registered its
        // miss (bounded, so a pathological scheduler cannot hang the
        // test — it would then merely report a flaky-free second job).
        for (int i = 0; i < 10'000 && handle->stats().misses < 2; ++i) {
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
        store::result_store store(f.store_dir,
                                  std::string(store::kBenchStoreSchema));
        return store.put(key, R"({"name":"fake"})");
    };
    serve::sweep_server server(std::move(cfg));
    handle = &server;
    const std::string query = R"({"op":"query","scenario":"fake"})";
    std::string a;
    std::string b;
    std::thread ta([&] { a = server.handle_line(query); });
    std::thread tb([&] { b = server.handle_line(query); });
    ta.join();
    tb.join();
    EXPECT_NE(a.find(R"("status":"computed")"), std::string::npos) << a;
    EXPECT_NE(b.find(R"("status":"computed")"), std::string::npos) << b;
    EXPECT_EQ(f.runs.load(), 1)
        << "identical in-flight queries must share a job";
    const auto stats = server.stats();
    EXPECT_EQ(stats.jobs_started, 1u);
    EXPECT_EQ(stats.coalesced, 1u);
    EXPECT_EQ(stats.misses, 2u);
}

TEST(SweepServer, StatsAndShutdownOps) {
    server_fixture f("csense_serve_ops");
    serve::sweep_server server(f.config());
    const std::string stats = server.handle_line(R"({"op":"stats"})");
    EXPECT_NE(stats.find(R"("jobs_started":0)"), std::string::npos)
        << stats;
    EXPECT_FALSE(server.shutdown_requested());
    const std::string bye = server.handle_line(R"({"op":"shutdown"})");
    EXPECT_NE(bye.find("shutting_down"), std::string::npos) << bye;
    EXPECT_TRUE(server.shutdown_requested());
}

// --- the csense_sweep_serve binary over its socket --------------------

#if CSENSE_HAVE_SOCKETS

/// One request/response round trip on a fresh connection.
std::string round_trip(const std::string& socket_path,
                       const std::string& line) {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) return "<socket failed>";
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (socket_path.size() >= sizeof(addr.sun_path)) {
        ::close(fd);
        return "<path too long>";
    }
    socket_path.copy(addr.sun_path, socket_path.size());
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) != 0) {
        ::close(fd);
        return "<connect failed>";
    }
    const std::string request = line + "\n";
    std::size_t sent = 0;
    while (sent < request.size()) {
        const ssize_t w = ::send(fd, request.data() + sent,
                                 request.size() - sent, 0);
        if (w <= 0) break;
        sent += static_cast<std::size_t>(w);
    }
    std::string response;
    char chunk[4096];
    while (response.find('\n') == std::string::npos) {
        const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
        if (n <= 0) break;
        response.append(chunk, static_cast<std::size_t>(n));
    }
    ::close(fd);
    const std::size_t eol = response.find('\n');
    return eol == std::string::npos ? response : response.substr(0, eol);
}

struct server_process {
    pid_t pid = -1;
    std::string socket_path;

    bool start(const fs::path& store, const fs::path& socket) {
        socket_path = socket.string();
        pid = fork();
        if (pid < 0) return false;
        if (pid == 0) {
            if (std::freopen("/dev/null", "w", stdout) == nullptr) {
                _exit(127);
            }
            execl(CSENSE_SERVE_BINARY, CSENSE_SERVE_BINARY, "--store",
                  store.c_str(), "--socket", socket.c_str(), "--bench",
                  CSENSE_BENCH_BINARY, static_cast<char*>(nullptr));
            _exit(127);
        }
        for (int i = 0; i < 1000; ++i) {
            if (fs::exists(socket)) return true;
            std::this_thread::sleep_for(std::chrono::milliseconds(10));
        }
        return false;
    }

    int stop() {
        if (pid < 0) return -1;
        round_trip(socket_path, R"({"op":"shutdown"})");
        int status = 0;
        waitpid(pid, &status, 0);
        pid = -1;
        return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
    }

    ~server_process() {
        if (pid > 0) {
            kill(pid, SIGKILL);
            waitpid(pid, nullptr, 0);
        }
    }
};

TEST(SweepServeBinary, WarmHitMissScheduleAndCleanShutdown) {
    const fs::path base =
        fs::path(::testing::TempDir()) / "csense_serve_binary";
    fs::remove_all(base);
    fs::create_directories(base);
    const fs::path store = base / "store";

    // Warm one cell the way any batch run would: the server must serve
    // it as a hit without scheduling a job.
    const std::string warm =
        "CSENSE_FAST=1 \"" + std::string(CSENSE_BENCH_BINARY) +
        "\" --filter fn12_slope_bound --seed 7 --no-timings --checkpoint \"" +
        store.string() + "\" > \"" + (base / "warm.log").string() +
        "\" 2>&1";
    ASSERT_EQ(std::system(warm.c_str()), 0);

    server_process server;
    ASSERT_TRUE(server.start(store, base / "sock"))
        << "server never bound its socket";

    const std::string hit = round_trip(
        server.socket_path,
        R"({"op":"query","scenario":"fn12_slope_bound","seed":7,)"
        R"("env":{"CSENSE_FAST":"1"}})");
    EXPECT_NE(hit.find(R"("status":"hit")"), std::string::npos) << hit;
    EXPECT_NE(hit.find(R"("name":"fn12_slope_bound")"), std::string::npos)
        << hit;

    // A cold cell: scheduled as a csense_bench job, then served; the
    // same query afterwards is a plain hit.
    const std::string cold_query =
        R"({"op":"query","scenario":"x01_shadowing_example","seed":7,)"
        R"("env":{"CSENSE_FAST":"1"}})";
    const std::string computed = round_trip(server.socket_path, cold_query);
    EXPECT_NE(computed.find(R"("status":"computed")"), std::string::npos)
        << computed;
    const std::string rehit = round_trip(server.socket_path, cold_query);
    EXPECT_NE(rehit.find(R"("status":"hit")"), std::string::npos) << rehit;

    const std::string malformed =
        round_trip(server.socket_path, "{definitely not json");
    EXPECT_NE(malformed.find(R"("ok":false)"), std::string::npos)
        << malformed;

    const std::string stats =
        round_trip(server.socket_path, R"({"op":"stats"})");
    EXPECT_NE(stats.find(R"("hits":2)"), std::string::npos) << stats;
    EXPECT_NE(stats.find(R"("jobs_started":1)"), std::string::npos)
        << stats;
    EXPECT_NE(stats.find(R"("errors":1)"), std::string::npos) << stats;

    EXPECT_EQ(server.stop(), 0) << "shutdown must exit the server cleanly";
    EXPECT_FALSE(fs::exists(base / "sock"))
        << "a clean shutdown unlinks the socket";
}

#endif  // CSENSE_HAVE_SOCKETS

}  // namespace
