// Synthetic testbed: layout determinism, channel-matrix properties,
// delivery categories, the §4 experiment harness, the §5 exposed-terminal
// comparison, and the Figure 14 RSSI survey.
#include <gtest/gtest.h>

#include <cmath>

#include "src/capacity/error_models.hpp"
#include "src/testbed/exposed.hpp"
#include "src/testbed/experiment.hpp"
#include "src/testbed/layout.hpp"
#include "src/testbed/rssi_survey.hpp"

namespace {

using namespace csense::testbed;

TEST(Layout, CountAndBounds) {
    building b;
    const auto nodes = make_layout(b, 50, 11);
    ASSERT_EQ(nodes.size(), 50u);
    for (const auto& node : nodes) {
        EXPECT_GE(node.pos.x, 0.0);
        EXPECT_LE(node.pos.x, b.width_m);
        EXPECT_GE(node.pos.y, 0.0);
        EXPECT_LE(node.pos.y, b.depth_m);
        EXPECT_GE(node.floor, 0);
        EXPECT_LT(node.floor, b.floors);
        EXPECT_DOUBLE_EQ(node.pos.z, node.floor * b.floor_height_m);
    }
}

TEST(Layout, TwoFloorsRoughlyBalanced) {
    const auto nodes = make_layout(building{}, 50, 11);
    int floor0 = 0;
    for (const auto& node : nodes) floor0 += (node.floor == 0) ? 1 : 0;
    EXPECT_EQ(floor0, 25);
}

TEST(Layout, DeterministicPerSeed) {
    const auto a = make_layout(building{}, 30, 7);
    const auto b = make_layout(building{}, 30, 7);
    const auto c = make_layout(building{}, 30, 8);
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_DOUBLE_EQ(a[i].pos.x, b[i].pos.x);
        EXPECT_DOUBLE_EQ(a[i].pos.y, b[i].pos.y);
    }
    EXPECT_NE(a[0].pos.x, c[0].pos.x);
}

TEST(Layout, DistanceAndFloors) {
    building b;
    const auto nodes = make_layout(b, 50, 11);
    // Cross-floor nodes are at least one floor height apart.
    for (std::size_t i = 0; i < nodes.size(); ++i) {
        for (std::size_t j = i + 1; j < nodes.size(); ++j) {
            if (floors_crossed(nodes[i], nodes[j]) == 1) {
                EXPECT_GE(node_distance_m(nodes[i], nodes[j]),
                          b.floor_height_m);
            }
        }
    }
    EXPECT_THROW(make_layout(b, 0, 1), std::invalid_argument);
}

TEST(ChannelMatrix, SymmetricAndPlausible) {
    const auto bed = make_default_testbed(30, 5);
    for (std::uint32_t a = 0; a < 30; ++a) {
        for (std::uint32_t b = a + 1; b < 30; ++b) {
            EXPECT_DOUBLE_EQ(bed.matrix->gain_db(a, b),
                             bed.matrix->gain_db(b, a));
            EXPECT_LT(bed.matrix->gain_db(a, b), -40.0);  // always some loss
        }
    }
    EXPECT_THROW(bed.matrix->gain_db(0, 0), std::invalid_argument);
    EXPECT_THROW(bed.matrix->gain_db(0, 99), std::invalid_argument);
}

TEST(ChannelMatrix, SnrConsistentWithGain) {
    const auto bed = make_default_testbed(20, 5);
    const double gain = bed.matrix->gain_db(1, 2);
    EXPECT_NEAR(bed.matrix->snr_db(1, 2),
                bed.radio.tx_power_dbm + gain - bed.radio.noise_floor_dbm,
                1e-12);
}

TEST(ChannelMatrix, DeliveryMonotoneInSnrAcrossLinks) {
    const auto bed = make_default_testbed(30, 5);
    const csense::capacity::logistic_per_model errors(2.5);
    const auto& rate = csense::capacity::rate_by_mbps(6.0);
    // Collect (snr, delivery) and check rank agreement on clear cases.
    for (std::uint32_t a = 1; a < 10; ++a) {
        const double snr_a = bed.matrix->snr_db(0, a);
        const double del_a =
            bed.matrix->expected_delivery(0, a, rate, 1400, errors);
        for (std::uint32_t b = a + 1; b < 10; ++b) {
            const double snr_b = bed.matrix->snr_db(0, b);
            const double del_b =
                bed.matrix->expected_delivery(0, b, rate, 1400, errors);
            if (snr_a > snr_b + 1.0) {
                EXPECT_GE(del_a, del_b - 1e-9);
            }
            if (snr_b > snr_a + 1.0) {
                EXPECT_GE(del_b, del_a - 1e-9);
            }
        }
    }
}

TEST(ChannelMatrix, LinksByDeliveryWindowIsConsistent) {
    const auto bed = make_default_testbed(40, 5);
    const csense::capacity::logistic_per_model errors(2.5);
    const auto& rate = csense::capacity::rate_by_mbps(6.0);
    const auto links =
        bed.matrix->links_by_delivery(0.80, 0.95, rate, 1400, errors);
    EXPECT_FALSE(links.empty());
    for (const auto& l : links) {
        const double delivery =
            bed.matrix->expected_delivery(l.sender, l.receiver, rate, 1400,
                                          errors);
        EXPECT_GE(delivery, 0.80);
        EXPECT_LE(delivery, 0.95);
    }
}

TEST(Testbed, BothBandsBuiltAndDistinct) {
    const auto bed = make_default_testbed(20, 5);
    ASSERT_TRUE(bed.matrix);
    ASSERT_TRUE(bed.matrix_24ghz);
    // 5 GHz links are weaker than 2.4 GHz links on the same geometry.
    double diff = 0.0;
    for (std::uint32_t a = 0; a < 10; ++a) {
        diff += bed.matrix_24ghz->gain_db(a, a + 5) -
                bed.matrix->gain_db(a, a + 5);
    }
    EXPECT_GT(diff / 10.0, 4.0);
}

TEST(Experiment, SmallRunProducesCoherentResults) {
    const auto bed = make_default_testbed();
    auto cfg = short_range_config();
    cfg.runs = 4;
    cfg.duration_s = 1.0;
    const auto result = run_experiment(bed, cfg);
    ASSERT_EQ(result.runs.size(), 4u);
    for (const auto& r : result.runs) {
        EXPECT_GT(r.mux_pps, 0.0);
        EXPECT_GE(r.cs_pps, 0.0);
        EXPECT_GE(r.optimal_pps(), r.mux_pps);
        EXPECT_GE(r.optimal_pps(), r.conc_pps);
        EXPECT_GT(r.snr1_db, 5.0);  // category links are usable
        // CS tracks at least a third of optimal even in the worst run.
        EXPECT_GT(r.cs_pps, 0.3 * r.optimal_pps());
    }
    EXPECT_GT(result.avg_optimal, 0.0);
    EXPECT_GT(result.cs_fraction(), 0.5);
    EXPECT_GT(result.category_snr_db, 10.0);
}

TEST(Experiment, DeterministicPerSeed) {
    const auto bed = make_default_testbed();
    auto cfg = short_range_config();
    cfg.runs = 2;
    cfg.duration_s = 0.5;
    const auto a = run_experiment(bed, cfg);
    const auto b = run_experiment(bed, cfg);
    ASSERT_EQ(a.runs.size(), b.runs.size());
    for (std::size_t i = 0; i < a.runs.size(); ++i) {
        EXPECT_DOUBLE_EQ(a.runs[i].cs_pps, b.runs[i].cs_pps);
        EXPECT_DOUBLE_EQ(a.runs[i].conc_pps, b.runs[i].conc_pps);
    }
}

TEST(Experiment, CategoriesDiffer) {
    const auto bed = make_default_testbed();
    const auto s = short_range_config();
    const auto l = long_range_config();
    EXPECT_GT(s.category_lo, l.category_lo);
    // Long-range category links have lower SNR on the default bed.
    const csense::capacity::logistic_per_model errors(2.5);
    const auto& rate = csense::capacity::rate_by_mbps(6.0);
    const auto short_links = bed.matrix->links_by_delivery(
        s.category_lo, s.category_hi, rate, 1400, errors);
    const auto long_links = bed.matrix->links_by_delivery(
        l.category_lo, l.category_hi, rate, 1400, errors);
    ASSERT_GT(short_links.size(), 3u);
    ASSERT_GT(long_links.size(), 3u);
    auto avg_snr = [&](const std::vector<csense::testbed::link>& links) {
        double sum = 0.0;
        for (const auto& x : links) sum += bed.matrix->snr_db(x.sender, x.receiver);
        return sum / links.size();
    };
    EXPECT_GT(avg_snr(short_links), avg_snr(long_links) + 3.0);
}

TEST(ExposedGain, AdaptationDominatesExposedExploitation) {
    // The §5 hierarchy: adaptation gain >> exposed-terminal gain, and the
    // combination adds little on top of adaptation.
    const auto bed = make_default_testbed();
    auto cfg = short_range_config();
    cfg.runs = 10;
    cfg.duration_s = 1.5;
    const auto result = run_exposed_gain_experiment(bed, cfg);
    EXPECT_GT(result.base_cs, 0.0);
    EXPECT_GT(result.adaptation_gain(), 1.5);
    EXPECT_GE(result.exposed_gain_base(), 1.0);
    EXPECT_GE(result.exposed_gain_adapted(), 1.0);
    EXPECT_LT(result.exposed_gain_adapted(), result.adaptation_gain());
    EXPECT_LT(result.exposed_gain_adapted(), 1.25);
}

TEST(RssiSurvey, RecoversChannelParameters) {
    const auto bed = make_default_testbed();
    rssi_survey_config cfg;
    const auto survey = run_rssi_survey(bed, cfg);
    EXPECT_EQ(survey.observations.size(), 50u * 49u / 2u);
    EXPECT_GT(survey.censored_count, 0);
    EXPECT_NEAR(survey.fit.alpha, survey.true_alpha, 0.5);
    EXPECT_NEAR(survey.fit.sigma_db, survey.true_sigma_db, 2.0);
    // The naive fit is biased toward a flatter slope.
    EXPECT_LT(survey.naive_fit.alpha, survey.fit.alpha);
}

TEST(RssiSurvey, ObservationsAreCensoredBelowThreshold) {
    const auto bed = make_default_testbed();
    rssi_survey_config cfg;
    const auto survey = run_rssi_survey(bed, cfg);
    for (const auto& obs : survey.observations) {
        if (!obs.censored) {
            EXPECT_GE(obs.snr_db, cfg.detection_threshold_db);
        }
        EXPECT_GT(obs.distance, 0.0);
    }
}

}  // namespace
