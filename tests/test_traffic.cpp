// Traffic sources and the per-node FIFO queue: arrival determinism,
// offered-load accounting, queue overflow drops, and the sojourn-time
// metrics the unsaturated campaigns report.
#include <gtest/gtest.h>

#include <vector>

#include "src/capacity/rate_table.hpp"
#include "src/mac/multi_pair.hpp"
#include "src/mac/network.hpp"
#include "src/mac/traffic.hpp"

namespace {

using namespace csense::mac;
using csense::capacity::rate_by_mbps;
using csense::stats::rng;

constexpr int payload = 1400;

traffic_config poisson_cfg(double pps) {
    traffic_config tc;
    tc.model = traffic_model::poisson;
    tc.offered_load_pps = pps;
    return tc;
}

std::vector<double> draw_gaps(traffic_source& source, std::uint64_t seed,
                              int count) {
    rng gen(seed);
    std::vector<double> gaps;
    gaps.reserve(count);
    for (int i = 0; i < count; ++i) {
        gaps.push_back(source.next_interarrival_us(gen));
    }
    return gaps;
}

TEST(TrafficSource, SaturatedIsTheDefaultAndFlagsItself) {
    const auto source = make_traffic_source(traffic_config{});
    EXPECT_TRUE(source->saturated());
    EXPECT_STREQ(source->name(), "saturated");
}

TEST(TrafficSource, FactoryRejectsNonPositiveRates) {
    traffic_config tc = poisson_cfg(0.0);
    EXPECT_THROW(make_traffic_source(tc), std::invalid_argument);
    tc = poisson_cfg(100.0);
    tc.model = traffic_model::on_off;
    tc.on_mean_us = 0.0;
    EXPECT_THROW(make_traffic_source(tc), std::invalid_argument);
}

TEST(TrafficSource, PoissonIsSeedDeterministicWithTheRightMean) {
    const auto a = make_traffic_source(poisson_cfg(1000.0));
    const auto b = make_traffic_source(poisson_cfg(1000.0));
    const auto gaps_a = draw_gaps(*a, 99, 20000);
    const auto gaps_b = draw_gaps(*b, 99, 20000);
    EXPECT_EQ(gaps_a, gaps_b);  // same seed => identical arrival sequence
    double sum = 0.0;
    for (const double g : gaps_a) sum += g;
    EXPECT_NEAR(sum / gaps_a.size(), 1000.0, 20.0);  // mean 1e6/1000 us
}

TEST(TrafficSource, CbrIsFixedSpacingAndConsumesNoRandomness) {
    traffic_config tc = poisson_cfg(500.0);
    tc.model = traffic_model::cbr;
    const auto source = make_traffic_source(tc);
    // Different seeds, same sequence: CBR never touches the stream.
    EXPECT_EQ(draw_gaps(*source, 1, 100),
              draw_gaps(*make_traffic_source(tc), 2, 100));
    EXPECT_DOUBLE_EQ(draw_gaps(*source, 3, 1).front(), 2000.0);
}

TEST(TrafficSource, OnOffKeepsTheOfferedMeanButBursts) {
    traffic_config tc = poisson_cfg(1000.0);
    tc.model = traffic_model::on_off;
    tc.on_mean_us = 5'000.0;
    tc.off_mean_us = 15'000.0;  // 25% duty cycle => 4x peak rate while on
    const auto source = make_traffic_source(tc);
    const auto gaps = draw_gaps(*source, 5, 40000);
    double sum = 0.0;
    int shorter_than_peak_mean = 0;
    for (const double g : gaps) {
        sum += g;
        if (g < 250.0) ++shorter_than_peak_mean;
    }
    // Long-run mean stays the offered load...
    EXPECT_NEAR(sum / gaps.size(), 1000.0, 60.0);
    // ...but most gaps are short intra-burst ones (peak mean 250 us).
    EXPECT_GT(shorter_than_peak_mean, gaps.size() / 2);
}

struct pair_net {
    network net;
    node_id s, r;

    explicit pair_net(std::uint64_t seed) : net(radio_config{}, seed) {
        s = net.add_node(mac_config{});
        r = net.add_node(mac_config{});
        net.set_link_gain_db(s, r, -60.0);
    }
};

TEST(TrafficQueue, LowLoadDeliversTheOfferedPacketsWithSmallSojourns) {
    pair_net p(17);
    p.net.node(p.s).set_traffic(traffic_mode::unicast, p.r,
                                rate_by_mbps(24.0), payload);
    p.net.node(p.s).set_traffic_model(poisson_cfg(200.0));
    p.net.run(2e6);
    const auto& stats = p.net.node(p.s).stats();
    EXPECT_NEAR(static_cast<double>(stats.offered_packets), 400.0, 80.0);
    EXPECT_EQ(stats.queue_drops, 0u);  // ~10% utilisation never overflows
    // Everything offered is delivered, modulo the odd packet in flight
    // at the end of the run.
    EXPECT_GE(stats.data_acked + 2, stats.offered_packets);
    const auto& sojourn = p.net.node(p.s).sojourn_times();
    EXPECT_EQ(sojourn.count(), stats.data_acked);
    // At 10% load the sojourn is essentially one service time: DIFS +
    // backoff + ~580 us of data airtime + SIFS + ACK.
    EXPECT_GT(sojourn.quantile(0.5), 500.0);
    EXPECT_LT(sojourn.quantile(0.99), 5'000.0);
}

TEST(TrafficQueue, OverloadFillsTheQueueAndCountsDrops) {
    pair_net p(18);
    traffic_config tc = poisson_cfg(5'000.0);  // far beyond link capacity
    tc.queue_capacity = 16;
    p.net.node(p.s).set_traffic(traffic_mode::unicast, p.r,
                                rate_by_mbps(24.0), payload);
    p.net.node(p.s).set_traffic_model(tc);
    p.net.run(2e6);
    const auto& stats = p.net.node(p.s).stats();
    EXPECT_GT(stats.queue_drops, 1000u);
    EXPECT_LT(stats.data_acked, stats.offered_packets);
    // A full 16-deep queue bounds the sojourn at ~17 service times.
    const auto& sojourn = p.net.node(p.s).sojourn_times();
    EXPECT_GT(sojourn.quantile(0.5), 5'000.0);  // queueing dominates
    EXPECT_LT(sojourn.max(), 17.5 * 2'000.0);
}

TEST(TrafficQueue, SameSeedSameArrivalsAcrossRuns) {
    auto run = [](std::uint64_t seed) {
        pair_net p(seed);
        p.net.node(p.s).set_traffic(traffic_mode::unicast, p.r,
                                    rate_by_mbps(24.0), payload);
        p.net.node(p.s).set_traffic_model(poisson_cfg(800.0));
        p.net.run(2e6);
        const auto& stats = p.net.node(p.s).stats();
        return std::tuple{stats.offered_packets, stats.data_acked,
                          p.net.node(p.s).sojourn_times().quantile(0.99),
                          p.net.node(p.s).sojourn_times().jitter()};
    };
    EXPECT_EQ(run(23), run(23));
    EXPECT_NE(std::get<0>(run(23)), std::get<0>(run(24)));
}

TEST(TrafficQueue, IdleSenderRestartsOnTheNextArrival) {
    // CBR at a very low rate: every packet finds an empty pipeline, so
    // deliveries track arrivals one for one.
    pair_net p(29);
    traffic_config tc = poisson_cfg(50.0);
    tc.model = traffic_model::cbr;
    p.net.node(p.s).set_traffic(traffic_mode::unicast, p.r,
                                rate_by_mbps(24.0), payload);
    p.net.node(p.s).set_traffic_model(tc);
    p.net.run(2e6);
    const auto& stats = p.net.node(p.s).stats();
    // Arrivals at 20 ms, 40 ms, ..., 2000 ms (run_until executes events
    // at exactly the horizon); the last one never gets air time.
    EXPECT_EQ(stats.offered_packets, 100u);
    EXPECT_EQ(stats.data_acked, 99u);
    EXPECT_EQ(p.net.node(p.s).queue_depth(), 0u);
}

TEST(MultiPairTraffic, UnsaturatedRunReportsLatencyAndDropMetrics) {
    rng gen(3);
    const auto topology = sample_multi_pair_topology(6, 120.0, 15.0, gen);
    multi_pair_config config;
    config.rate = &rate_by_mbps(24.0);
    config.duration_us = 5e5;
    config.seed = 3;
    config.unicast = true;
    config.rate_adapt = rate_adapt_mode::arf;
    config.traffic = poisson_cfg(600.0);
    config.traffic.queue_capacity = 32;
    const auto result = run_multi_pair(topology, config);
    EXPECT_GT(result.offered_packets, 0u);
    EXPECT_GT(result.sojourn_us.count(), 0u);
    EXPECT_GT(result.sojourn_us.quantile(0.5), 0.0);
    EXPECT_GE(result.sojourn_us.quantile(0.99),
              result.sojourn_us.quantile(0.5));
    EXPECT_GE(result.drop_rate, 0.0);
    EXPECT_LE(result.drop_rate, 1.0);
    // Determinism across identical configs.
    const auto again = run_multi_pair(topology, config);
    EXPECT_EQ(result.offered_packets, again.offered_packets);
    EXPECT_EQ(result.queue_drops, again.queue_drops);
    EXPECT_EQ(result.sojourn_us.quantile(0.99),
              again.sojourn_us.quantile(0.99));
}

TEST(MultiPairTraffic, RateAdaptationRequiresUnicast) {
    rng gen(4);
    const auto topology = sample_multi_pair_topology(2, 80.0, 10.0, gen);
    multi_pair_config config;
    config.rate = &rate_by_mbps(24.0);
    config.rate_adapt = rate_adapt_mode::arf;  // but unicast left false
    EXPECT_THROW(run_multi_pair(topology, config), std::invalid_argument);
}

}  // namespace
