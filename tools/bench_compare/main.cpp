// bench_compare — perf gate over two csense_bench JSON reports.
//
// Usage:
//   bench_compare BASELINE.json NEW.json [--threshold 0.25] [--quiet]
//
// Compares, for every scenario present in both files:
//   * per-scenario elapsed time: elapsed_ms_mean/min/max when the run
//     used --repeat, else the single elapsed_ms, and
//   * per-benchmark ms/iter for perf_micro-style metrics (numeric
//     metrics whose name ends in "_ms"),
// flagging anything slower than baseline * (1 + threshold) as a
// regression (default threshold 0.25 = ±25% noise band). Scenarios or
// benchmarks present in only one file are reported but never fail the
// gate — scenario sets legitimately change across PRs. Exits 1 when at
// least one regression fired, 2 on usage/parse errors.
//
// The parser below covers exactly the JSON subset report::json_value
// emits (objects, arrays, strings, doubles, bools, null); keeping it
// local avoids a third-party dependency for a 300-line tool.
#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

namespace {

// ---------------------------------------------------------------------------
// Minimal JSON

struct json_node {
    enum class kind { null, boolean, number, string, array, object };
    kind type = kind::null;
    bool boolean = false;
    double number = 0.0;
    std::string string;
    std::vector<json_node> array;
    std::vector<std::pair<std::string, json_node>> object;

    const json_node* find(std::string_view key) const {
        for (const auto& [k, v] : object) {
            if (k == key) return &v;
        }
        return nullptr;
    }
};

class json_parser {
public:
    explicit json_parser(std::string_view text) : text_(text) {}

    bool parse(json_node* out) {
        skip_ws();
        if (!value(out)) return false;
        skip_ws();
        return pos_ == text_.size();
    }

private:
    void skip_ws() {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
            ++pos_;
        }
    }
    bool consume(char c) {
        if (pos_ < text_.size() && text_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }
    bool literal(std::string_view word) {
        if (text_.compare(pos_, word.size(), word) == 0) {
            pos_ += word.size();
            return true;
        }
        return false;
    }
    bool string_body(std::string* out) {
        if (!consume('"')) return false;
        while (pos_ < text_.size() && text_[pos_] != '"') {
            char c = text_[pos_++];
            if (c == '\\' && pos_ < text_.size()) {
                const char esc = text_[pos_++];
                switch (esc) {
                    case 'n': c = '\n'; break;
                    case 't': c = '\t'; break;
                    case 'r': c = '\r'; break;
                    case 'b': c = '\b'; break;
                    case 'f': c = '\f'; break;
                    case 'u':
                        // Benchmarks never emit non-ASCII; keep the
                        // escape verbatim rather than decoding UTF-16.
                        out->push_back('\\');
                        c = 'u';
                        break;
                    default: c = esc; break;
                }
            }
            out->push_back(c);
        }
        return consume('"');
    }
    bool value(json_node* out) {
        skip_ws();
        if (pos_ >= text_.size()) return false;
        const char c = text_[pos_];
        if (c == '{') {
            ++pos_;
            out->type = json_node::kind::object;
            skip_ws();
            if (consume('}')) return true;
            while (true) {
                std::string key;
                skip_ws();
                if (!string_body(&key)) return false;
                skip_ws();
                if (!consume(':')) return false;
                json_node child;
                if (!value(&child)) return false;
                out->object.emplace_back(std::move(key), std::move(child));
                skip_ws();
                if (consume(',')) continue;
                return consume('}');
            }
        }
        if (c == '[') {
            ++pos_;
            out->type = json_node::kind::array;
            skip_ws();
            if (consume(']')) return true;
            while (true) {
                json_node child;
                if (!value(&child)) return false;
                out->array.push_back(std::move(child));
                skip_ws();
                if (consume(',')) continue;
                return consume(']');
            }
        }
        if (c == '"') {
            out->type = json_node::kind::string;
            return string_body(&out->string);
        }
        if (literal("true")) {
            out->type = json_node::kind::boolean;
            out->boolean = true;
            return true;
        }
        if (literal("false")) {
            out->type = json_node::kind::boolean;
            out->boolean = false;
            return true;
        }
        if (literal("null")) {
            out->type = json_node::kind::null;
            return true;
        }
        std::size_t end = pos_;
        while (end < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[end])) != 0 ||
                text_[end] == '-' || text_[end] == '+' || text_[end] == '.' ||
                text_[end] == 'e' || text_[end] == 'E')) {
            ++end;
        }
        if (end == pos_) return false;
        const auto result =
            std::from_chars(text_.data() + pos_, text_.data() + end,
                            out->number);
        if (result.ec != std::errc()) return false;
        out->type = json_node::kind::number;
        pos_ = end;
        return true;
    }

    std::string_view text_;
    std::size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Comparison

struct timing_series {
    std::map<std::string, double> values;  // label -> ms
};

/// Extracts everything comparable from one report: scenario elapsed
/// stats plus per-benchmark ms metrics.
std::map<std::string, timing_series> extract(const json_node& doc) {
    std::map<std::string, timing_series> out;
    const json_node* scenarios = doc.find("scenarios");
    if (scenarios == nullptr) return out;
    for (const auto& sc : scenarios->array) {
        const json_node* name = sc.find("name");
        if (name == nullptr) continue;
        timing_series& series = out[name->string];
        for (const char* key :
             {"elapsed_ms_mean", "elapsed_ms_min", "elapsed_ms_max"}) {
            if (const json_node* v = sc.find(key);
                v != nullptr && v->type == json_node::kind::number) {
                // key + 11 skips "elapsed_ms_", leaving mean/min/max.
                series.values[std::string("elapsed/") + (key + 11)] =
                    v->number;
            }
        }
        // Single-shot runs only carry elapsed_ms; use it as the mean.
        if (series.values.empty()) {
            if (const json_node* v = sc.find("elapsed_ms");
                v != nullptr && v->type == json_node::kind::number) {
                series.values["elapsed/mean"] = v->number;
            }
        }
        if (const json_node* metrics = sc.find("metrics");
            metrics != nullptr) {
            for (const auto& [k, v] : metrics->object) {
                if (v.type == json_node::kind::number && k.size() > 3 &&
                    k.compare(k.size() - 3, 3, "_ms") == 0) {
                    series.values["metric/" + k] = v.number;
                }
            }
        }
    }
    return out;
}

bool read_doc(const char* path, json_node* doc) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        std::cerr << "bench_compare: cannot open " << path << "\n";
        return false;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string text = buf.str();
    json_parser parser(text);
    if (!parser.parse(doc)) {
        std::cerr << "bench_compare: " << path << ": JSON parse error\n";
        return false;
    }
    return true;
}

}  // namespace

int main(int argc, char** argv) {
    const char* base_path = nullptr;
    const char* new_path = nullptr;
    double threshold = 0.25;
    bool quiet = false;

    for (int i = 1; i < argc; ++i) {
        const std::string_view arg = argv[i];
        if (arg == "--threshold") {
            if (++i >= argc) {
                std::cerr << "bench_compare: --threshold needs a value\n";
                return 2;
            }
            threshold = std::strtod(argv[i], nullptr);
            if (!(threshold > 0.0)) {
                std::cerr << "bench_compare: threshold must be > 0\n";
                return 2;
            }
        } else if (arg == "--quiet") {
            quiet = true;
        } else if (arg == "--help" || arg == "-h" ||
                   (!arg.empty() && arg.front() == '-')) {
            std::cerr << "usage: bench_compare BASELINE.json NEW.json"
                         " [--threshold FRAC] [--quiet]\n";
            return arg == "--help" || arg == "-h" ? 0 : 2;
        } else if (base_path == nullptr) {
            base_path = argv[i];
        } else if (new_path == nullptr) {
            new_path = argv[i];
        } else {
            std::cerr << "bench_compare: too many positional arguments\n";
            return 2;
        }
    }
    if (base_path == nullptr || new_path == nullptr) {
        std::cerr << "usage: bench_compare BASELINE.json NEW.json"
                     " [--threshold FRAC] [--quiet]\n";
        return 2;
    }

    json_node base_doc;
    json_node new_doc;
    if (!read_doc(base_path, &base_doc) || !read_doc(new_path, &new_doc)) {
        return 2;
    }
    const auto base = extract(base_doc);
    const auto fresh = extract(new_doc);

    int regressions = 0;
    int improvements = 0;
    int compared = 0;

    for (const auto& [name, base_series] : base) {
        const auto it = fresh.find(name);
        if (it == fresh.end()) {
            if (!quiet) {
                std::cout << "  (only in baseline) " << name << "\n";
            }
            continue;
        }
        for (const auto& [label, base_ms] : base_series.values) {
            const auto vit = it->second.values.find(label);
            if (vit == it->second.values.end()) continue;
            const double new_ms = vit->second;
            ++compared;
            if (!(base_ms > 0.0)) continue;
            const double ratio = new_ms / base_ms;
            const double pct = (ratio - 1.0) * 100.0;
            char verdict = ' ';
            if (ratio > 1.0 + threshold) {
                verdict = '!';
                ++regressions;
            } else if (ratio < 1.0 - threshold) {
                verdict = '+';
                ++improvements;
            }
            if (!quiet || verdict == '!') {
                std::printf("%c %-24s %-44s %12.4f -> %12.4f ms (%+.1f%%)%s\n",
                            verdict, name.c_str(), label.c_str(), base_ms,
                            new_ms, pct,
                            verdict == '!' ? "  REGRESSION"
                            : verdict == '+' ? "  faster"
                                             : "");
            }
        }
    }
    for (const auto& [name, series] : fresh) {
        if (base.find(name) == base.end() && !quiet) {
            std::cout << "  (new scenario) " << name << "\n";
        }
    }

    std::printf("%d timings compared (threshold ±%.0f%%): "
                "%d regression%s, %d improvement%s\n",
                compared, threshold * 100.0, regressions,
                regressions == 1 ? "" : "s", improvements,
                improvements == 1 ? "" : "s");
    if (compared == 0) {
        std::cerr << "bench_compare: nothing comparable between the two "
                     "reports\n";
        return 2;
    }
    return regressions > 0 ? 1 : 0;
}
