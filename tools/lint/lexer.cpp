#include "tools/lint/lexer.hpp"

#include <cctype>

namespace csense::lint {

namespace {

bool ident_start(char c) {
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool ident_char(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// True when source[i] starts a raw-string literal (R" with an optional
/// u8/u/U/L encoding prefix) and the prefix is not glued to a longer
/// identifier (fooR"..." is not a raw string).
bool raw_string_at(std::string_view s, std::size_t i, std::size_t* r_pos) {
    std::size_t r = i;
    if (r + 1 < s.size() && (s[r] == 'u' || s[r] == 'U' || s[r] == 'L')) {
        if (s[r] == 'u' && r + 2 < s.size() && s[r + 1] == '8') ++r;
        ++r;
    }
    if (r + 1 >= s.size() || s[r] != 'R' || s[r + 1] != '"') return false;
    if (i > 0 && ident_char(s[i - 1])) return false;
    *r_pos = r;
    return true;
}

}  // namespace

scrubbed_source scrub(std::string_view source) {
    scrubbed_source out;
    out.code.assign(source.begin(), source.end());
    std::string& code = out.code;

    int line = 1;
    bool line_has_code = false;
    std::size_t i = 0;
    const std::size_t n = source.size();

    auto blank = [&](std::size_t at) {
        if (code[at] != '\n') code[at] = ' ';
    };

    while (i < n) {
        const char c = source[i];
        if (c == '\n') {
            ++line;
            line_has_code = false;
            ++i;
            continue;
        }
        // Line comment.
        if (c == '/' && i + 1 < n && source[i + 1] == '/') {
            comment cm;
            cm.line = line;
            cm.own_line = !line_has_code;
            std::size_t j = i;
            while (j < n && source[j] != '\n') {
                blank(j);
                ++j;
            }
            cm.text.assign(source.substr(i + 2, j - i - 2));
            cm.end_line = line;
            out.comments.push_back(std::move(cm));
            i = j;
            continue;
        }
        // Block comment.
        if (c == '/' && i + 1 < n && source[i + 1] == '*') {
            comment cm;
            cm.line = line;
            cm.own_line = !line_has_code;
            std::size_t j = i + 2;
            while (j + 1 < n && !(source[j] == '*' && source[j + 1] == '/')) {
                if (source[j] == '\n') ++line;
                ++j;
            }
            const std::size_t body_end = j;
            if (j + 1 < n) j += 2;  // consume the closing */
            for (std::size_t k = i; k < j; ++k) blank(k);
            cm.text.assign(source.substr(i + 2, body_end - i - 2));
            cm.end_line = line;
            out.comments.push_back(std::move(cm));
            i = j;
            continue;
        }
        // Raw string literal.
        std::size_t r_pos = 0;
        if ((c == 'R' || c == 'u' || c == 'U' || c == 'L') &&
            raw_string_at(source, i, &r_pos)) {
            std::size_t j = r_pos + 2;  // past R"
            std::string delim;
            while (j < n && source[j] != '(') delim += source[j++];
            const std::string closer = ")" + delim + "\"";
            std::size_t end = source.find(closer, j);
            end = (end == std::string_view::npos) ? n : end + closer.size();
            for (std::size_t k = i; k < end; ++k) {
                if (source[k] == '\n') ++line;
                blank(k);
            }
            line_has_code = true;
            i = end;
            continue;
        }
        // Ordinary string literal.
        if (c == '"') {
            std::size_t j = i + 1;
            while (j < n && source[j] != '"' && source[j] != '\n') {
                if (source[j] == '\\' && j + 1 < n) ++j;
                ++j;
            }
            if (j < n && source[j] == '"') ++j;
            for (std::size_t k = i; k < j; ++k) blank(k);
            line_has_code = true;
            i = j;
            continue;
        }
        // Character literal — but a ' preceded by an identifier/number
        // character is a C++14 digit separator, not a literal.
        if (c == '\'' && (i == 0 || !ident_char(source[i - 1]))) {
            std::size_t j = i + 1;
            while (j < n && source[j] != '\'' && source[j] != '\n') {
                if (source[j] == '\\' && j + 1 < n) ++j;
                ++j;
            }
            if (j < n && source[j] == '\'') ++j;
            for (std::size_t k = i; k < j; ++k) blank(k);
            line_has_code = true;
            i = j;
            continue;
        }
        if (!std::isspace(static_cast<unsigned char>(c))) line_has_code = true;
        ++i;
    }
    return out;
}

std::vector<token> tokenize(std::string_view code) {
    std::vector<token> out;
    int line = 1;
    std::size_t i = 0;
    const std::size_t n = code.size();
    while (i < n) {
        const char c = code[i];
        if (c == '\n') {
            ++line;
            ++i;
            continue;
        }
        if (std::isspace(static_cast<unsigned char>(c))) {
            ++i;
            continue;
        }
        if (ident_start(c)) {
            std::size_t j = i + 1;
            while (j < n && ident_char(code[j])) ++j;
            out.push_back({token_kind::identifier, code.substr(i, j - i), line});
            i = j;
            continue;
        }
        if (std::isdigit(static_cast<unsigned char>(c))) {
            std::size_t j = i + 1;
            // pp-number: digits, letters, dots, ' separators, and
            // exponent signs. Good enough to keep 1e-9 in one token.
            while (j < n &&
                   (ident_char(code[j]) || code[j] == '.' || code[j] == '\'' ||
                    ((code[j] == '+' || code[j] == '-') &&
                     (code[j - 1] == 'e' || code[j - 1] == 'E' ||
                      code[j - 1] == 'p' || code[j - 1] == 'P')))) {
                ++j;
            }
            out.push_back({token_kind::number, code.substr(i, j - i), line});
            i = j;
            continue;
        }
        static constexpr std::string_view two_char[] = {"::", "->", "+=",
                                                        "[[", "]]"};
        bool matched = false;
        for (const auto op : two_char) {
            if (code.compare(i, op.size(), op) == 0) {
                out.push_back({token_kind::punct, code.substr(i, op.size()),
                               line});
                i += op.size();
                matched = true;
                break;
            }
        }
        if (matched) continue;
        out.push_back({token_kind::punct, code.substr(i, 1), line});
        ++i;
    }
    return out;
}

}  // namespace csense::lint
