// Lexical front end for csense_lint.
//
// The linter is tokenizer-based, not AST-based: it must never be
// confused by comments, string literals (including raw strings) or
// digit separators, but it does not need full C++ parsing — every rule
// in the catalog is expressible over a token stream with small context
// windows. scrub() strips comments and literals while preserving line
// structure, and records every comment so the pragma layer
// (`// csense-lint: allow(rule) -- justification`) can be resolved
// against it. tokenize() then produces the identifier/punctuation
// stream the rules in rules.cpp pattern-match.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace csense::lint {

/// One comment extracted from the source, positioned at the line its
/// opening delimiter appeared on.
struct comment {
    int line = 1;          ///< 1-based line of the comment start
    int end_line = 1;      ///< 1-based line of the comment end
    std::string text;      ///< body without the // or /* */ delimiters
    bool own_line = false; ///< only whitespace precedes it on its line
};

/// The scrubbed view of a translation unit: comments, string literals
/// and character literals are replaced by spaces (newlines inside them
/// are kept, so line numbers are stable) and collected separately.
struct scrubbed_source {
    std::string code;
    std::vector<comment> comments;
};

/// Strips comments and literals. Handles //, /* */, "...", '...',
/// raw strings (R"tag(...)tag" with encoding prefixes) and C++14
/// digit separators (the ' in 1'000'000 is not a character literal).
scrubbed_source scrub(std::string_view source);

/// Token kinds the rules care about. Numbers are lexed (so 0x1p3 or
/// 1e-9 never split into confusing fragments) but carry kind::number.
enum class token_kind {
    identifier,
    number,
    punct,
};

struct token {
    token_kind kind = token_kind::punct;
    std::string_view text;  ///< view into the scrubbed code buffer
    int line = 1;           ///< 1-based line number
};

/// Tokenizes scrubbed code. Multi-character operators the rules need
/// (`::`, `->`, `+=`, `[[`, `]]`) are single tokens; everything else
/// punctuation-like is one character per token.
std::vector<token> tokenize(std::string_view scrubbed_code);

}  // namespace csense::lint
