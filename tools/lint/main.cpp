// csense_lint — the project's determinism/concurrency contract linter.
//
// Usage:
//   csense_lint [--root DIR] [--json FILE] [--list-rules] [PATH...]
//
// With no PATHs, lints src/, bench/ and tests/ under --root (default:
// the current directory), skipping tests/lint_fixtures/. Emits
// `file:line: [id/name] message` per violation plus a summary, writes
// an optional JSON report, and exits nonzero when anything fires.
// --list-rules prints the rule catalog as the markdown table embedded
// in docs/determinism.md (CI diffs the two).
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "src/report/json.hpp"
#include "tools/lint/rules.hpp"

namespace {

int usage(int code) {
    std::cerr
        << "usage: csense_lint [--root DIR] [--json FILE] [--list-rules]"
           " [PATH...]\n"
           "  PATHs default to src bench tests under --root.\n";
    return code;
}

std::string rule_name(std::string_view id) {
    for (const auto& r : csense::lint::rules()) {
        if (r.id == id) return std::string(r.name);
    }
    return "?";
}

}  // namespace

int main(int argc, char** argv) {
    namespace fs = std::filesystem;
    fs::path root = fs::current_path();
    std::string json_path;
    std::vector<std::string> paths;
    bool list_rules = false;

    for (int i = 1; i < argc; ++i) {
        const std::string_view arg = argv[i];
        if (arg == "--help" || arg == "-h") return usage(0);
        if (arg == "--list-rules") {
            list_rules = true;
        } else if (arg == "--root") {
            if (++i >= argc) return usage(2);
            root = argv[i];
        } else if (arg == "--json") {
            if (++i >= argc) return usage(2);
            json_path = argv[i];
        } else if (!arg.empty() && arg.front() == '-') {
            std::cerr << "csense_lint: unknown option " << arg << "\n";
            return usage(2);
        } else {
            paths.emplace_back(arg);
        }
    }

    if (list_rules) {
        std::cout << csense::lint::list_rules_markdown();
        return 0;
    }

    if (paths.empty()) paths = {"src", "bench", "tests"};
    std::vector<fs::path> roots;
    roots.reserve(paths.size());
    for (const auto& p : paths) {
        fs::path candidate = p;
        if (candidate.is_relative()) candidate = root / candidate;
        if (!fs::exists(candidate)) {
            std::cerr << "csense_lint: no such path: "
                      << candidate.generic_string() << "\n";
            return 2;
        }
        roots.push_back(candidate);
    }

    std::size_t files_scanned = 0;
    const auto violations =
        csense::lint::lint_tree(roots, root, &files_scanned);

    for (const auto& v : violations) {
        std::cout << v.file << ":" << v.line << ": [" << v.rule << "/"
                  << rule_name(v.rule) << "] " << v.message << "\n";
    }
    std::cout << files_scanned << " files scanned, " << violations.size()
              << " violation" << (violations.size() == 1 ? "" : "s") << "\n";

    if (!json_path.empty()) {
        using csense::report::json_value;
        json_value doc = json_value::object();
        doc["schema"] = "csense-lint/1";
        doc["files_scanned"] = static_cast<std::uint64_t>(files_scanned);
        json_value list = json_value::array();
        for (const auto& v : violations) {
            json_value item = json_value::object();
            item["file"] = std::string_view(v.file);
            item["line"] = v.line;
            item["rule"] = std::string_view(v.rule);
            const std::string name = rule_name(v.rule);
            item["name"] = std::string_view(name);
            item["message"] = std::string_view(v.message);
            list.push_back(std::move(item));
        }
        doc["violations"] = std::move(list);
        std::ofstream out(json_path, std::ios::binary);
        out << doc.dump(2) << "\n";
        if (!out) {
            std::cerr << "csense_lint: failed to write " << json_path << "\n";
            return 2;
        }
    }
    return violations.empty() ? 0 : 1;
}
