#include "tools/lint/rules.hpp"

#include <algorithm>
#include <fstream>
#include <map>
#include <set>
#include <sstream>

#include "tools/lint/lexer.hpp"

namespace csense::lint {

namespace {

// ---------------------------------------------------------------------------
// Catalog

const std::vector<rule_info>& catalog() {
    static const std::vector<rule_info> table = {
        {"R1", "nondeterminism-source",
         "No banned nondeterminism sources: `std::random_device`, `rand()`/"
         "`srand()`, `time()`, `clock()`, `*_clock::now()` outside the "
         "timing-report whitelist (`bench/main.cpp`), pointer hashing "
         "(`std::hash<T*>`), or `reinterpret_cast` to `(u)intptr_t`."},
        {"R2", "raw-rng",
         "No raw `<random>` engines or distributions (`std::mt19937`, "
         "`std::uniform_*`, ...) outside `src/stats/rng.*`; all draws go "
         "through the split-RNG facade `stats::rng`."},
        {"R3", "unordered-iteration",
         "No range-for or `begin()`/`end()` iteration over "
         "`std::unordered_map`/`std::unordered_set` in result-producing "
         "code; hash order varies across libraries and ASLR."},
        {"R4", "loop-float-accumulation",
         "Floating-point `+=` accumulation inside loops in `src/mac/`, "
         "`src/sim/` and the streaming-quantile paths "
         "(`src/stats/quantile.*`) must use `stats::kahan_sum` or carry a "
         "justified allow-pragma."},
        {"R5", "mutable-static",
         "No mutable file-scope/`static`/`thread_local` state outside the "
         "registered singletons (thread pool in `src/core/parallel.cpp`, "
         "quadrature rule cache in `src/stats/quadrature.cpp`, scenario "
         "registry in `bench/registry.cpp`)."},
        {"R6", "std-function-hot-path",
         "No `std::function` in the simulator event hot path (`src/mac/`, "
         "`src/sim/`, excluding the campaign orchestration layer "
         "`src/sim/campaign.*`); event closures use the fixed-size "
         "`sim::inline_action` (src/sim/inline_action.hpp), and a call "
         "site that genuinely needs unbounded type erasure passes a "
         "`std::function` into it explicitly under a justified "
         "allow-pragma."},
        {"LP", "lint-pragma",
         "Every `csense-lint: allow(...)` pragma must name a known rule, "
         "carry a non-empty justification, and actually suppress a "
         "violation."},
    };
    return table;
}

const rule_info* find_rule(std::string_view id_or_name) {
    for (const auto& r : catalog()) {
        if (r.id == id_or_name || r.name == id_or_name) return &r;
    }
    return nullptr;
}

// ---------------------------------------------------------------------------
// Small path/token helpers

bool path_ends_with(std::string_view path, std::string_view suffix) {
    if (path.size() < suffix.size()) return false;
    if (path.compare(path.size() - suffix.size(), suffix.size(), suffix) != 0) {
        return false;
    }
    // Require a path-component boundary so "xbench/main.cpp" never
    // matches the "bench/main.cpp" whitelist.
    const std::size_t at = path.size() - suffix.size();
    return at == 0 || path[at - 1] == '/';
}

bool path_contains_dir(std::string_view path, std::string_view dir) {
    // Matches "<dir>/" at the start or after a '/' anywhere in the path.
    std::size_t pos = 0;
    while ((pos = path.find(dir, pos)) != std::string_view::npos) {
        const bool at_boundary = pos == 0 || path[pos - 1] == '/';
        const bool ends_component = pos + dir.size() < path.size() &&
                                    path[pos + dir.size()] == '/';
        if (at_boundary && ends_component) return true;
        ++pos;
    }
    return false;
}

using tokens_t = std::vector<token>;

bool is_ident(const token& t, std::string_view text) {
    return t.kind == token_kind::identifier && t.text == text;
}

bool is_punct(const token& t, std::string_view text) {
    return t.kind == token_kind::punct && t.text == text;
}

/// Index of the token matching the opener at `open` (one of ( [ { <),
/// or toks.size() when unbalanced.
std::size_t match_forward(const tokens_t& toks, std::size_t open,
                          std::string_view open_text,
                          std::string_view close_text) {
    int depth = 0;
    for (std::size_t i = open; i < toks.size(); ++i) {
        if (is_punct(toks[i], open_text)) ++depth;
        if (is_punct(toks[i], close_text)) {
            if (--depth == 0) return i;
        }
    }
    return toks.size();
}

// ---------------------------------------------------------------------------
// Pragmas

struct pragma {
    int target_line = 0;  ///< line the suppression applies to
    int source_line = 0;  ///< line the pragma comment sits on
    std::string rule;     ///< normalized rule id ("R1".."R5")
    bool used = false;
};

std::string_view trim(std::string_view s) {
    while (!s.empty() &&
           (std::isspace(static_cast<unsigned char>(s.front())) != 0)) {
        s.remove_prefix(1);
    }
    while (!s.empty() &&
           (std::isspace(static_cast<unsigned char>(s.back())) != 0)) {
        s.remove_suffix(1);
    }
    return s;
}

/// Per-line "does any code appear here" map, for resolving own-line
/// pragmas onto the next code line.
std::vector<bool> code_line_map(std::string_view code) {
    std::vector<bool> has_code(2, false);  // 1-based; grow as needed
    int line = 1;
    for (const char c : code) {
        if (c == '\n') {
            ++line;
            has_code.push_back(false);
            continue;
        }
        if (!std::isspace(static_cast<unsigned char>(c))) {
            has_code[static_cast<std::size_t>(line)] = true;
        }
    }
    return has_code;
}

void parse_pragmas(std::string_view path, const scrubbed_source& src,
                   std::vector<pragma>* pragmas,
                   std::vector<violation>* out) {
    const auto has_code = code_line_map(src.code);
    const auto next_code_line = [&](int after) {
        for (std::size_t l = static_cast<std::size_t>(after) + 1;
             l < has_code.size(); ++l) {
            if (has_code[l]) return static_cast<int>(l);
        }
        return 0;
    };

    for (const auto& cm : src.comments) {
        const std::string_view text = cm.text;
        const std::size_t at = text.find("csense-lint:");
        if (at == std::string_view::npos) continue;
        const auto lp = [&](std::string msg) {
            out->push_back({std::string(path), cm.line, "LP", std::move(msg)});
        };
        std::string_view rest = trim(text.substr(at + 12));
        if (rest.rfind("allow", 0) != 0) {
            lp("malformed csense-lint pragma: expected 'allow(<rule>)'");
            continue;
        }
        rest = trim(rest.substr(5));
        if (rest.empty() || rest.front() != '(') {
            lp("malformed csense-lint pragma: expected '(' after 'allow'");
            continue;
        }
        const std::size_t close = rest.find(')');
        if (close == std::string_view::npos) {
            lp("malformed csense-lint pragma: missing ')'");
            continue;
        }
        const std::string_view rule_list = rest.substr(1, close - 1);
        std::string_view justification = trim(rest.substr(close + 1));
        while (!justification.empty() &&
               (justification.front() == '-' || justification.front() == ':' ||
                justification.front() == '=')) {
            justification.remove_prefix(1);
        }
        justification = trim(justification);
        if (justification.empty()) {
            lp("csense-lint pragma is missing its justification text "
               "(syntax: csense-lint: allow(<rule>) -- <why this is safe>)");
            continue;
        }
        const int target =
            cm.own_line ? next_code_line(cm.end_line) : cm.line;
        // Split the comma-separated rule list.
        std::size_t begin = 0;
        while (begin <= rule_list.size()) {
            std::size_t end = rule_list.find(',', begin);
            if (end == std::string_view::npos) end = rule_list.size();
            const std::string_view name =
                trim(rule_list.substr(begin, end - begin));
            begin = end + 1;
            if (name.empty()) continue;
            const rule_info* rule = find_rule(name);
            if (rule == nullptr) {
                lp("csense-lint pragma names unknown rule '" +
                   std::string(name) + "' (see csense_lint --list-rules)");
                continue;
            }
            if (rule->id == "LP") {
                lp("the lint-pragma rule itself cannot be suppressed");
                continue;
            }
            pragmas->push_back(
                {target, cm.line, std::string(rule->id), false});
        }
    }
}

// ---------------------------------------------------------------------------
// Declaration harvesting (identifier tables for R3/R4)

struct decl_tables {
    std::set<std::string, std::less<>> unordered_idents;
    std::set<std::string, std::less<>> float_idents;
};

bool is_unordered_type(std::string_view ident) {
    return ident == "unordered_map" || ident == "unordered_set" ||
           ident == "unordered_multimap" || ident == "unordered_multiset";
}

bool is_float_type(std::string_view ident) {
    return ident == "double" || ident == "float";
}

/// Skips cv/ref/pointer decoration between a type and its declarator.
std::size_t skip_decoration(const tokens_t& toks, std::size_t i) {
    while (i < toks.size() &&
           (is_punct(toks[i], "&") || is_punct(toks[i], "*") ||
            is_ident(toks[i], "const"))) {
        ++i;
    }
    return i;
}

/// True when the token after a candidate declarator name means it is a
/// variable/member/parameter, not a function or qualified name. A '('
/// is a constructor call rather than a parameter list when its first
/// argument starts with a literal (`vector<double> bins(4, 0.0)`).
bool declares_variable(const tokens_t& toks, std::size_t after_name) {
    if (after_name >= toks.size()) return false;
    const token& t = toks[after_name];
    if (is_punct(t, "(")) {
        return after_name + 1 < toks.size() &&
               toks[after_name + 1].kind == token_kind::number;
    }
    return is_punct(t, ";") || is_punct(t, "=") || is_punct(t, ",") ||
           is_punct(t, ")") || is_punct(t, "{") || is_punct(t, "[");
}

void collect_decls(const tokens_t& toks, decl_tables* tables) {
    for (std::size_t i = 0; i < toks.size(); ++i) {
        const token& t = toks[i];
        if (t.kind != token_kind::identifier) continue;

        // std::unordered_map<...> name   /  vector<double> name
        const bool unordered = is_unordered_type(t.text);
        const bool container = t.text == "vector" || t.text == "array" ||
                               t.text == "deque" || t.text == "valarray";
        if ((unordered || container) && i + 1 < toks.size() &&
            is_punct(toks[i + 1], "<")) {
            const std::size_t close = match_forward(toks, i + 1, "<", ">");
            if (close >= toks.size()) continue;
            bool element_float = false;
            for (std::size_t j = i + 2; j < close; ++j) {
                if (toks[j].kind == token_kind::identifier &&
                    is_float_type(toks[j].text)) {
                    element_float = true;
                }
            }
            std::size_t name_at = skip_decoration(toks, close + 1);
            if (name_at < toks.size() &&
                toks[name_at].kind == token_kind::identifier &&
                declares_variable(toks, name_at + 1)) {
                if (unordered) {
                    tables->unordered_idents.emplace(toks[name_at].text);
                } else if (element_float) {
                    tables->float_idents.emplace(toks[name_at].text);
                }
            }
            continue;
        }

        // double name / float name (locals, members, parameters)
        if (is_float_type(t.text)) {
            // Not inside template args: handled above; a bare
            // "double >" or "double ," in a template list fails the
            // declarator test below anyway.
            std::size_t name_at = skip_decoration(toks, i + 1);
            if (name_at < toks.size() &&
                toks[name_at].kind == token_kind::identifier &&
                declares_variable(toks, name_at + 1)) {
                tables->float_idents.emplace(toks[name_at].text);
            }
            continue;
        }

        // const auto& alias = <expr mentioning an unordered ident>;
        // Reference bindings propagate "unordered-ness"; by-value
        // copies (e.g. iterators from .find()) do not.
        if (t.text == "auto" && i + 1 < toks.size() &&
            (is_punct(toks[i + 1], "&"))) {
            std::size_t name_at = i + 2;
            if (name_at >= toks.size() ||
                toks[name_at].kind != token_kind::identifier) {
                continue;
            }
            if (name_at + 1 >= toks.size() ||
                !is_punct(toks[name_at + 1], "=")) {
                continue;
            }
            for (std::size_t j = name_at + 2;
                 j < toks.size() && !is_punct(toks[j], ";"); ++j) {
                if (toks[j].kind == token_kind::identifier &&
                    tables->unordered_idents.count(toks[j].text) > 0) {
                    tables->unordered_idents.emplace(toks[name_at].text);
                    break;
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// R1 — nondeterminism sources

/// True when the call-looking identifier at `i` is a plain or
/// std-qualified reference (not `obj.time(...)`, not `myns::time(...)`).
bool plain_or_std_call(const tokens_t& toks, std::size_t i) {
    if (i == 0) return true;
    const token& prev = toks[i - 1];
    if (is_punct(prev, ".") || is_punct(prev, "->")) return false;
    if (is_punct(prev, "::")) {
        return i >= 2 && is_ident(toks[i - 2], "std");
    }
    // A preceding type position means this is a declaration of a
    // same-named function (`int time(int)`, `foo_t* clock(...)`), not a
    // call. Expression keywords still read as calls.
    if (prev.kind == token_kind::identifier) {
        static const std::set<std::string_view> kExprKeywords = {
            "return",   "throw",    "case", "co_return",
            "co_await", "co_yield", "else", "do",
        };
        return kExprKeywords.count(prev.text) > 0;
    }
    if (is_punct(prev, ">") || is_punct(prev, "*") || is_punct(prev, "&")) {
        return false;
    }
    return true;
}

void scan_r1(std::string_view path, const tokens_t& toks,
             std::vector<violation>* out) {
    const bool timing_whitelisted = path_ends_with(path, "bench/main.cpp");
    const auto add = [&](int line, const std::string& what) {
        out->push_back(
            {std::string(path), line, "R1",
             "banned nondeterminism source " + what +
                 "; every stochastic or time-like input must derive from "
                 "the run seed (stats::rng) or the simulated clock"});
    };
    for (std::size_t i = 0; i < toks.size(); ++i) {
        const token& t = toks[i];
        if (t.kind != token_kind::identifier) continue;

        if (t.text == "random_device") {
            add(t.line, "'std::random_device'");
            continue;
        }
        const bool call_next =
            i + 1 < toks.size() && is_punct(toks[i + 1], "(");
        if ((t.text == "rand" || t.text == "srand") && call_next &&
            plain_or_std_call(toks, i)) {
            add(t.line, "'" + std::string(t.text) + "()'");
            continue;
        }
        if ((t.text == "time" || t.text == "clock") && call_next &&
            plain_or_std_call(toks, i)) {
            add(t.line, "'" + std::string(t.text) + "()'");
            continue;
        }
        // <ident ending in clock> :: now  — wall-clock reads. Allowed
        // only in the timing report (bench/main.cpp), which prints
        // elapsed times that are explicitly excluded from determinism
        // checks via --no-timings.
        if (t.text.size() >= 5 &&
            t.text.substr(t.text.size() - 5) == "clock" &&
            i + 2 < toks.size() && is_punct(toks[i + 1], "::") &&
            is_ident(toks[i + 2], "now")) {
            if (!timing_whitelisted) {
                add(t.line, "'" + std::string(t.text) + "::now()'");
            }
            continue;
        }
        // Address-derived values: hashing a pointer type or casting a
        // pointer to an integer makes output depend on ASLR.
        if (t.text == "hash" && i + 1 < toks.size() &&
            is_punct(toks[i + 1], "<") && plain_or_std_call(toks, i)) {
            const std::size_t close = match_forward(toks, i + 1, "<", ">");
            for (std::size_t j = i + 2; j < close; ++j) {
                if (is_punct(toks[j], "*")) {
                    add(t.line, "'std::hash' over a pointer type");
                    break;
                }
            }
            continue;
        }
        if (t.text == "reinterpret_cast" && i + 1 < toks.size() &&
            is_punct(toks[i + 1], "<")) {
            const std::size_t close = match_forward(toks, i + 1, "<", ">");
            for (std::size_t j = i + 2; j < close; ++j) {
                if (toks[j].kind == token_kind::identifier &&
                    (toks[j].text == "uintptr_t" ||
                     toks[j].text == "intptr_t")) {
                    add(t.line, "'reinterpret_cast' to (u)intptr_t");
                    break;
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// R2 — raw <random> engines/distributions outside the facade

void scan_r2(std::string_view path, const tokens_t& toks,
             std::vector<violation>* out) {
    if (path_ends_with(path, "src/stats/rng.hpp") ||
        path_ends_with(path, "src/stats/rng.cpp")) {
        return;
    }
    static const std::set<std::string_view> banned = {
        "mt19937", "mt19937_64", "minstd_rand", "minstd_rand0",
        "ranlux24", "ranlux24_base", "ranlux48", "ranlux48_base",
        "knuth_b", "default_random_engine",
        "uniform_real_distribution", "uniform_int_distribution",
        "normal_distribution", "lognormal_distribution",
        "exponential_distribution", "bernoulli_distribution",
        "poisson_distribution", "geometric_distribution",
        "binomial_distribution", "gamma_distribution",
        "weibull_distribution", "cauchy_distribution",
        "chi_squared_distribution", "student_t_distribution",
        "fisher_f_distribution", "discrete_distribution",
        "piecewise_constant_distribution", "piecewise_linear_distribution",
    };
    for (const auto& t : toks) {
        if (t.kind == token_kind::identifier && banned.count(t.text) > 0) {
            out->push_back(
                {std::string(path), t.line, "R2",
                 "raw <random> engine/distribution '" + std::string(t.text) +
                     "'; draw through the split-RNG facade "
                     "(src/stats/rng.hpp) so every stream derives from the "
                     "run seed and splits deterministically"});
        }
    }
}

// ---------------------------------------------------------------------------
// R3 — iteration over unordered containers

void scan_r3(std::string_view path, const tokens_t& toks,
             const decl_tables& tables, std::vector<violation>* out) {
    if (tables.unordered_idents.empty()) return;
    const auto add = [&](int line, std::string_view ident) {
        out->push_back(
            {std::string(path), line, "R3",
             "iteration over unordered container '" + std::string(ident) +
                 "': hash order is implementation- and ASLR-dependent, so "
                 "any result folded from it is nondeterministic; iterate "
                 "indices or a sorted view instead"});
    };
    for (std::size_t i = 0; i < toks.size(); ++i) {
        const bool loop_kw = is_ident(toks[i], "for") ||
                             is_ident(toks[i], "while");
        if (!loop_kw || i + 1 >= toks.size() || !is_punct(toks[i + 1], "(")) {
            continue;
        }
        const std::size_t close = match_forward(toks, i + 1, "(", ")");
        if (close >= toks.size()) continue;

        // Range-for: the expression after the top-level ':'.
        std::size_t colon = toks.size();
        int depth = 0;
        for (std::size_t j = i + 2; j < close; ++j) {
            if (is_punct(toks[j], "(") || is_punct(toks[j], "[") ||
                is_punct(toks[j], "{")) {
                ++depth;
            }
            if (is_punct(toks[j], ")") || is_punct(toks[j], "]") ||
                is_punct(toks[j], "}")) {
                --depth;
            }
            if (depth == 0 && is_punct(toks[j], ":")) {
                colon = j;
                break;
            }
        }
        bool flagged = false;
        if (colon < close) {
            for (std::size_t j = colon + 1; j < close && !flagged; ++j) {
                if (toks[j].kind == token_kind::identifier &&
                    tables.unordered_idents.count(toks[j].text) > 0) {
                    add(toks[i].line, toks[j].text);
                    flagged = true;
                }
            }
        }
        // Iterator loops: <unordered>.begin()/.end()/… inside the
        // loop header.
        for (std::size_t j = i + 2; j + 2 < close && !flagged; ++j) {
            if (toks[j].kind == token_kind::identifier &&
                tables.unordered_idents.count(toks[j].text) > 0 &&
                is_punct(toks[j + 1], ".") &&
                (is_ident(toks[j + 2], "begin") ||
                 is_ident(toks[j + 2], "cbegin") ||
                 is_ident(toks[j + 2], "end") ||
                 is_ident(toks[j + 2], "cend"))) {
                add(toks[i].line, toks[j].text);
                flagged = true;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// R4 — floating-point += accumulation in loops (src/mac, src/sim)

/// Resolves the accumulated identifier to the left of a `+=` token:
/// the trailing identifier of the lvalue path (`result.total_pps` ->
/// total_pps, `arr[i]` -> arr).
std::string_view lhs_ident(const tokens_t& toks, std::size_t plus_eq) {
    if (plus_eq == 0) return {};
    std::size_t i = plus_eq - 1;
    if (is_punct(toks[i], "]")) {
        int depth = 0;
        while (true) {
            if (is_punct(toks[i], "]")) ++depth;
            if (is_punct(toks[i], "[")) {
                if (--depth == 0) break;
            }
            if (i == 0) return {};
            --i;
        }
        if (i == 0) return {};
        --i;
    }
    if (toks[i].kind == token_kind::identifier) return toks[i].text;
    return {};
}

void scan_r4(std::string_view path, const tokens_t& toks,
             const decl_tables& tables, std::vector<violation>* out) {
    // The streaming-quantile accumulator feeds merge-order-sensitive
    // latency metrics (camp06), so its float sums are held to the same
    // standard as the packet path; the rest of src/stats/ is
    // order-insensitive math and stays out of scope.
    if (!path_contains_dir(path, "src/mac") &&
        !path_contains_dir(path, "src/sim") &&
        !path_ends_with(path, "src/stats/quantile.hpp") &&
        !path_ends_with(path, "src/stats/quantile.cpp")) {
        return;
    }
    const auto add = [&](int line, std::string_view ident) {
        out->push_back(
            {std::string(path), line, "R4",
             "floating-point accumulation '" + std::string(ident) +
                 " +=' inside a loop: plain summation drifts and bakes the "
                 "iteration order into the result; accumulate through "
                 "stats::kahan_sum (src/stats/kahan.hpp)"});
    };
    const auto check_plus_eq = [&](std::size_t i) {
        const std::string_view ident = lhs_ident(toks, i);
        if (!ident.empty() && tables.float_idents.count(ident) > 0) {
            add(toks[i].line, ident);
        }
    };

    // Mark which '{' tokens open loop bodies, then track nesting.
    std::set<std::size_t> loop_braces;
    for (std::size_t i = 0; i < toks.size(); ++i) {
        if (is_ident(toks[i], "do") && i + 1 < toks.size() &&
            is_punct(toks[i + 1], "{")) {
            loop_braces.insert(i + 1);
            continue;
        }
        const bool loop_kw = is_ident(toks[i], "for") ||
                             is_ident(toks[i], "while");
        if (!loop_kw || i + 1 >= toks.size() || !is_punct(toks[i + 1], "(")) {
            continue;
        }
        const std::size_t close = match_forward(toks, i + 1, "(", ")");
        if (close + 1 < toks.size() && is_punct(toks[close + 1], "{")) {
            loop_braces.insert(close + 1);
        } else {
            // Braceless body: the single statement up to ';'.
            for (std::size_t j = close + 1;
                 j < toks.size() && !is_punct(toks[j], ";"); ++j) {
                if (is_punct(toks[j], "+=")) check_plus_eq(j);
            }
        }
    }
    int loop_depth = 0;
    std::vector<bool> brace_is_loop;
    for (std::size_t i = 0; i < toks.size(); ++i) {
        if (is_punct(toks[i], "{")) {
            const bool is_loop = loop_braces.count(i) > 0;
            brace_is_loop.push_back(is_loop);
            loop_depth += is_loop ? 1 : 0;
            continue;
        }
        if (is_punct(toks[i], "}")) {
            if (!brace_is_loop.empty()) {
                loop_depth -= brace_is_loop.back() ? 1 : 0;
                brace_is_loop.pop_back();
            }
            continue;
        }
        if (loop_depth > 0 && is_punct(toks[i], "+=")) check_plus_eq(i);
    }
}

// ---------------------------------------------------------------------------
// R5 — mutable static state

void scan_r5(std::string_view path, const tokens_t& toks,
             std::vector<violation>* out) {
    static constexpr std::string_view whitelist[] = {
        "src/core/parallel.cpp",   // the process-wide thread pool
        "src/stats/quadrature.cpp",  // the quadrature rule cache
        "bench/registry.cpp",      // the scenario registry
    };
    for (const auto w : whitelist) {
        if (path_ends_with(path, w)) return;
    }
    for (std::size_t i = 0; i < toks.size(); ++i) {
        const token& t = toks[i];
        const bool is_static = is_ident(t, "static");
        const bool is_tls = is_ident(t, "thread_local");
        if (!is_static && !is_tls) continue;
        // Classify the declaration by scanning to the first structural
        // terminator: '(' before ';'/'='/'{' means a function (never
        // state); const/constexpr/constinit anywhere before it means
        // immutable (fine).
        bool immutable = false;
        bool function = false;
        std::string_view name;
        for (std::size_t j = i + 1; j < toks.size(); ++j) {
            const token& u = toks[j];
            if (is_ident(u, "const") || is_ident(u, "constexpr") ||
                is_ident(u, "constinit") || is_ident(u, "consteval")) {
                immutable = true;
                break;
            }
            if (is_ident(u, "thread_local") || is_ident(u, "static")) {
                continue;  // "static thread_local" in either order
            }
            if (is_punct(u, "(")) {
                function = true;
                break;
            }
            if (is_punct(u, ";") || is_punct(u, "=") || is_punct(u, "{")) {
                break;
            }
            if (u.kind == token_kind::identifier) name = u.text;
        }
        if (immutable || function) continue;
        out->push_back(
            {std::string(path), t.line, "R5",
             "mutable static state" +
                 (name.empty() ? std::string()
                               : " ('" + std::string(name) + "')") +
                 ": shared mutable globals leak state across runs and "
                 "threads; only the registered singletons (thread pool, "
                 "quadrature rule cache, scenario registry) may hold "
                 "static state"});
    }
}

// ---------------------------------------------------------------------------
// R6 — std::function in the simulator event hot path

void scan_r6(std::string_view path, const tokens_t& toks,
             std::vector<violation>* out) {
    // Hot-path scope: the MAC layer and the simulation kernel. The
    // campaign layer orchestrates whole runs (one closure per unit, not
    // per event), so type erasure is fine there.
    if (!path_contains_dir(path, "src/mac") &&
        !path_contains_dir(path, "src/sim")) {
        return;
    }
    if (path_ends_with(path, "src/sim/campaign.cpp") ||
        path_ends_with(path, "src/sim/campaign.hpp")) {
        return;
    }
    for (std::size_t i = 2; i < toks.size(); ++i) {
        if (is_ident(toks[i], "function") && is_punct(toks[i - 1], "::") &&
            is_ident(toks[i - 2], "std")) {
            out->push_back(
                {std::string(path), toks[i].line, "R6",
                 "std::function in the simulator hot path: a type-erased "
                 "closure heap-allocates per schedule and breaks the "
                 "allocation-free event contract; capture into "
                 "sim::inline_action (src/sim/inline_action.hpp) instead, "
                 "or justify the type erasure with an allow-pragma"});
        }
    }
}

}  // namespace

// ---------------------------------------------------------------------------
// Public API

const std::vector<rule_info>& rules() { return catalog(); }

std::string list_rules_markdown() {
    std::ostringstream os;
    os << "| Id | Pragma name | Enforces |\n";
    os << "| --- | --- | --- |\n";
    for (const auto& r : catalog()) {
        os << "| " << r.id << " | `" << r.name << "` | " << r.summary
           << " |\n";
    }
    return os.str();
}

std::vector<violation> lint_source(std::string_view path,
                                   std::string_view content,
                                   std::string_view header_context) {
    const scrubbed_source src = scrub(content);
    const tokens_t toks = tokenize(src.code);

    decl_tables tables;
    if (!header_context.empty()) {
        const scrubbed_source header = scrub(header_context);
        collect_decls(tokenize(header.code), &tables);
    }
    collect_decls(toks, &tables);

    std::vector<violation> raw;
    scan_r1(path, toks, &raw);
    scan_r2(path, toks, &raw);
    scan_r3(path, toks, tables, &raw);
    scan_r4(path, toks, tables, &raw);
    scan_r5(path, toks, &raw);
    scan_r6(path, toks, &raw);

    std::vector<pragma> pragmas;
    std::vector<violation> out;
    parse_pragmas(path, src, &pragmas, &out);

    for (auto& v : raw) {
        bool suppressed = false;
        for (auto& p : pragmas) {
            if (p.target_line == v.line && p.rule == v.rule) {
                p.used = true;
                suppressed = true;
            }
        }
        if (!suppressed) out.push_back(std::move(v));
    }
    for (const auto& p : pragmas) {
        if (p.used) continue;
        const rule_info* rule = find_rule(p.rule);
        out.push_back(
            {std::string(path), p.source_line, "LP",
             "allow-pragma for rule " + p.rule + " (" +
                 std::string(rule != nullptr ? rule->name : "?") +
                 ") suppresses nothing; remove it or move it next to the "
                 "violating line"});
    }
    std::sort(out.begin(), out.end(), [](const violation& a,
                                         const violation& b) {
        if (a.line != b.line) return a.line < b.line;
        return a.rule < b.rule;
    });
    return out;
}

std::vector<violation> lint_file(const std::filesystem::path& file) {
    const auto read = [](const std::filesystem::path& p) -> std::string {
        std::ifstream in(p, std::ios::binary);
        std::ostringstream buf;
        buf << in.rdbuf();
        return buf.str();
    };
    std::string header;
    if (file.extension() == ".cpp") {
        std::filesystem::path sibling = file;
        sibling.replace_extension(".hpp");
        if (std::filesystem::exists(sibling)) header = read(sibling);
    }
    return lint_source(file.generic_string(), read(file), header);
}

std::vector<violation> lint_tree(
    const std::vector<std::filesystem::path>& roots,
    const std::filesystem::path& base, std::size_t* files_scanned) {
    std::vector<std::filesystem::path> files;
    for (const auto& root : roots) {
        if (!std::filesystem::exists(root)) continue;
        if (std::filesystem::is_regular_file(root)) {
            files.push_back(root);
            continue;
        }
        for (auto it = std::filesystem::recursive_directory_iterator(root);
             it != std::filesystem::recursive_directory_iterator(); ++it) {
            if (it->is_directory() &&
                it->path().filename() == "lint_fixtures") {
                it.disable_recursion_pending();
                continue;
            }
            if (!it->is_regular_file()) continue;
            const auto ext = it->path().extension();
            if (ext == ".cpp" || ext == ".hpp") files.push_back(it->path());
        }
    }
    std::sort(files.begin(), files.end());
    if (files_scanned != nullptr) *files_scanned = files.size();

    std::vector<violation> out;
    for (const auto& f : files) {
        auto vs = lint_file(f);
        for (auto& v : vs) {
            if (!base.empty()) {
                const auto rel =
                    std::filesystem::relative(f, base).generic_string();
                if (!rel.empty() && rel.rfind("..", 0) != 0) v.file = rel;
            }
            out.push_back(std::move(v));
        }
    }
    return out;
}

}  // namespace csense::lint
