// The csense_lint rule engine.
//
// Encodes the codebase's determinism and concurrency contracts as a
// static rule catalog (see docs/determinism.md for the rationale):
//
//   R1 nondeterminism-source   banned entropy/clock/address sources
//   R2 raw-rng                 std RNG engines/distributions outside
//                              the split-RNG facade (src/stats/rng.*)
//   R3 unordered-iteration     range/iterator loops over unordered
//                              containers in result-producing code
//   R4 loop-float-accumulation `+=` float accumulation inside loops in
//                              src/mac/ and src/sim/ without
//                              stats::kahan_sum
//   R5 mutable-static          mutable file-scope/static state outside
//                              the registered singletons
//   R6 std-function-hot-path   std::function in the simulator event
//                              hot path (src/mac/, src/sim/) outside
//                              the campaign orchestration layer
//   LP lint-pragma             malformed allow-pragmas (unknown rule,
//                              missing justification)
//
// Violations are suppressed line-by-line with
//   // csense-lint: allow(<rule-name>) -- <justification>
// where the justification text is mandatory. A pragma on its own line
// applies to the next line that contains code; a trailing pragma
// applies to its own line.
#pragma once

#include <cstddef>
#include <filesystem>
#include <string>
#include <string_view>
#include <vector>

namespace csense::lint {

struct violation {
    std::string file;     ///< path label as passed to lint_source
    int line = 0;         ///< 1-based
    std::string rule;     ///< "R1".."R6", "LP"
    std::string message;
};

struct rule_info {
    std::string_view id;       ///< "R3"
    std::string_view name;     ///< "unordered-iteration" (pragma name)
    std::string_view summary;  ///< one-line description for --list-rules
};

/// The full rule catalog, in id order.
const std::vector<rule_info>& rules();

/// Renders the catalog as the markdown table embedded in
/// docs/determinism.md (CI diffs the two; keep byte-stable).
std::string list_rules_markdown();

/// Lints one translation unit. `path` is used both for reporting and
/// for the path-scoped rule logic (R2's facade whitelist, R4's
/// src/mac//src/sim scope, R5's singleton whitelist, R1's
/// timing-report whitelist), so tests can exercise path-dependent
/// behaviour with synthetic labels. `header_context`, when non-empty,
/// is the text of the unit's sibling header: its declarations seed the
/// identifier tables (unordered members, floating-point members) that
/// R3/R4 resolve against.
std::vector<violation> lint_source(std::string_view path,
                                   std::string_view content,
                                   std::string_view header_context = {});

/// Lints a file on disk. For foo.cpp, a sibling foo.hpp (same
/// directory) is read automatically as header context.
std::vector<violation> lint_file(const std::filesystem::path& file);

/// Recursively lints every .cpp/.hpp under each root, skipping any
/// directory named "lint_fixtures" (the linter's own known-bad test
/// corpus). Paths are reported relative to `base` when non-empty.
/// `files_scanned`, when non-null, receives the file count.
std::vector<violation> lint_tree(const std::vector<std::filesystem::path>& roots,
                                 const std::filesystem::path& base = {},
                                 std::size_t* files_scanned = nullptr);

}  // namespace csense::lint
