#!/usr/bin/env python3
"""Splice `csense_lint --list-rules` output (stdin) into a markdown file.

Replaces everything between the `<!-- lint-rules:begin -->` and
`<!-- lint-rules:end -->` markers in the file named by argv[1]. Used by
the `docs_lint_rules` CMake target; CI then diffs the file, so the
committed rule table can never go stale (same pattern as the scenario
catalog).
"""
import sys

BEGIN = "<!-- lint-rules:begin -->"
END = "<!-- lint-rules:end -->"


def main() -> int:
    if len(sys.argv) != 2:
        print("usage: csense_lint --list-rules | splice_rules.py DOC.md",
              file=sys.stderr)
        return 2
    path = sys.argv[1]
    table = sys.stdin.read().rstrip("\n")
    with open(path, encoding="utf-8") as f:
        doc = f.read()
    try:
        head, rest = doc.split(BEGIN, 1)
        _, tail = rest.split(END, 1)
    except ValueError:
        print(f"{path}: missing {BEGIN} / {END} markers", file=sys.stderr)
        return 2
    with open(path, "w", encoding="utf-8") as f:
        f.write(head + BEGIN + "\n" + table + "\n" + END + tail)
    return 0


if __name__ == "__main__":
    sys.exit(main())
