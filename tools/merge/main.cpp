// csense_merge: validate k shard checkpoint stores (written by
// `csense_bench --shard i/k --checkpoint <dir>`) and splice their
// replication records into one merged store — then, optionally, replay
// the merged store through csense_bench to emit the final JSON
// document, byte-identical to an unsharded `--no-timings` run.
//
//   csense_merge --out <merged-dir> <shard-dir>...
//       [--json <path>] [--bench <path>] [--threads <n>] [--no-env-check]
//
// Validation is collect-then-report: every issue across every shard is
// printed (kind, shard, key, reason) before exiting, and the merged
// store is only written when the issue list is empty — a merge can
// never silently drop cells. Exit codes (docs/robustness.md):
//
//   0  ok            merged (and, with --json, replayed) cleanly
//   1  fatal         environment failure (unwritable --out, replay
//                    binary missing, ...)
//   2  usage         malformed command line
//   3  corrupt       a record failed structural/checksum validation
//   4  stale         a record carries another store schema version
//   5  missing       a shard store/manifest is absent, manifests
//                    disagree, or the CSENSE_* env fingerprint does not
//                    match the merge's environment
//   6  duplicate     a shard holds a record another shard owns
//   7  gap           an owned replication record is missing
//
// When several kinds occur at once the exit code follows precedence
// 5 > 3 > 4 > 6 > 7 (an incomplete shard set invalidates finer
// diagnostics); every issue is still printed.
//
// The JSON emission deliberately replays through csense_bench (default:
// the csense_merge binary's own directory) instead of reimplementing
// the driver's document layout: same binary, same bytes, and the replay
// recomputes nothing because every replication record is already in the
// merged store.
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <optional>
#include <string>
#include <vector>

#include "src/store/run_keys.hpp"
#include "src/store/shard_merge.hpp"

namespace {

using namespace csense;

struct options {
    std::string out_dir;
    std::vector<std::filesystem::path> shards;
    std::string json_path;
    std::string bench_path;
    int threads = 0;
    bool env_check = true;
};

void print_usage(std::FILE* out) {
    std::fprintf(out,
                 "usage: csense_merge --out <merged-dir> <shard-dir>... "
                 "[--json <path>] [--bench <path>] [--threads <n>] "
                 "[--no-env-check]\n");
}

bool parse_args(int argc, char** argv, options& opts) {
    for (int i = 1; i < argc; ++i) {
        const std::string_view arg = argv[i];
        auto value = [&](const char* flag) -> const char* {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "csense_merge: %s needs a value\n",
                             flag);
                return nullptr;
            }
            return argv[++i];
        };
        if (arg == "--out") {
            const char* v = value("--out");
            if (v == nullptr) return false;
            opts.out_dir = v;
        } else if (arg == "--json") {
            const char* v = value("--json");
            if (v == nullptr) return false;
            opts.json_path = v;
        } else if (arg == "--bench") {
            const char* v = value("--bench");
            if (v == nullptr) return false;
            opts.bench_path = v;
        } else if (arg == "--threads") {
            const char* v = value("--threads");
            if (v == nullptr) return false;
            opts.threads = std::atoi(v);
            if (opts.threads < 0) {
                std::fprintf(stderr, "csense_merge: bad --threads '%s'\n",
                             v);
                return false;
            }
        } else if (arg == "--no-env-check") {
            opts.env_check = false;
        } else if (arg == "--help" || arg == "-h") {
            print_usage(stdout);
            std::exit(store::kMergeOk);
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr, "csense_merge: unknown argument '%s'\n",
                         argv[i]);
            print_usage(stderr);
            return false;
        } else {
            opts.shards.emplace_back(std::string(arg));
        }
    }
    if (opts.out_dir.empty()) {
        std::fprintf(stderr, "csense_merge: --out is required\n");
        print_usage(stderr);
        return false;
    }
    if (opts.shards.empty()) {
        std::fprintf(stderr,
                     "csense_merge: at least one shard store is required\n");
        print_usage(stderr);
        return false;
    }
    return true;
}

/// Replays the merged store through csense_bench so the final document
/// comes from the same code path (and the same bytes) as an unsharded
/// run. Returns the tool exit code.
int emit_json(const options& opts, const store::shard_manifest& manifest) {
    std::string bench = opts.bench_path;
    if (bench.empty()) {
        // Default to the csense_bench next to this binary — both land
        // in the build root.
        std::error_code ec;
        const auto self = std::filesystem::read_symlink("/proc/self/exe", ec);
        bench = ec ? "csense_bench"
                   : (self.parent_path() / "csense_bench").string();
    }
    std::vector<std::string> args = {
        bench,     "--checkpoint", opts.out_dir,
        "--json",  opts.json_path, "--no-timings",
        "--seed",  std::to_string(manifest.seed),
        "--filter", manifest.filter};
    if (opts.threads > 0) {
        args.push_back("--threads");
        args.push_back(std::to_string(opts.threads));
    }
    std::vector<char*> argv;
    argv.reserve(args.size() + 1);
    for (auto& a : args) argv.push_back(a.data());
    argv.push_back(nullptr);

    const pid_t pid = fork();
    if (pid < 0) {
        std::fprintf(stderr, "csense_merge: fork failed (errno %d)\n",
                     errno);
        return store::kMergeFatal;
    }
    if (pid == 0) {
        execv(bench.c_str(), argv.data());
        std::fprintf(stderr,
                     "csense_merge: cannot exec '%s' (errno %d)\n",
                     bench.c_str(), errno);
        _exit(127);
    }
    int wstatus = 0;
    if (waitpid(pid, &wstatus, 0) < 0) {
        std::fprintf(stderr, "csense_merge: waitpid failed (errno %d)\n",
                     errno);
        return store::kMergeFatal;
    }
    if (!WIFEXITED(wstatus)) {
        std::fprintf(stderr, "csense_merge: replay terminated abnormally\n");
        return store::kMergeFatal;
    }
    const int code = WEXITSTATUS(wstatus);
    // Exit 3 = the replay completed and wrote the JSON, but a scenario
    // gate failed — a property of the results, not of the merge.
    if (code == 3) {
        std::fprintf(stderr,
                     "csense_merge: note: replay reported gate failures "
                     "(JSON written)\n");
        return store::kMergeOk;
    }
    if (code != 0) {
        std::fprintf(stderr, "csense_merge: replay exited with code %d\n",
                     code);
        return store::kMergeFatal;
    }
    return store::kMergeOk;
}

}  // namespace

int main(int argc, char** argv) {
    options opts;
    if (!parse_args(argc, argv, opts)) return store::kMergeUsage;

    std::optional<std::string> expected_env_fp;
    if (opts.env_check) {
        expected_env_fp = store::current_env_fingerprint();
    }

    store::merge_result result;
    try {
        result = store::merge_shard_stores(opts.shards, opts.out_dir,
                                           expected_env_fp);
    } catch (const std::exception& e) {
        std::fprintf(stderr, "csense_merge: %s\n", e.what());
        return store::kMergeFatal;
    }

    for (const auto& issue : result.issues) {
        std::fprintf(stderr, "csense_merge: [%s]",
                     store::merge_issue_kind_name(issue.kind));
        if (issue.shard >= 0) {
            std::fprintf(stderr, " shard %d", issue.shard);
        }
        if (!issue.key.empty()) {
            std::fprintf(stderr, " %s", issue.key.c_str());
        }
        std::fprintf(stderr, ": %s\n", issue.detail.c_str());
    }
    if (!result.issues.empty()) {
        std::fprintf(stderr,
                     "csense_merge: %zu issue(s); merged store NOT "
                     "written\n", result.issues.size());
        return store::merge_exit_code(result.issues);
    }
    if (!result.manifest) {
        // merge_shard_stores reports an empty issue list only with a
        // manifest; this is a defensive belt.
        std::fprintf(stderr, "csense_merge: no shard manifest found\n");
        return store::kMergeMissingShard;
    }
    std::printf("csense_merge: %zu record(s) merged into %s",
                result.records_merged, opts.out_dir.c_str());
    if (result.records_ignored > 0) {
        std::printf(" (%zu foreign record(s) ignored)",
                    result.records_ignored);
    }
    std::printf("\n");

    if (!opts.json_path.empty()) {
        return emit_json(opts, *result.manifest);
    }
    return store::kMergeOk;
}
